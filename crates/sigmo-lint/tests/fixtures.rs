//! Fixture regression tests: every committed bad fixture must trip exactly
//! its rule, the good fixtures must stay silent, and the real workspace
//! must pass clean. The binary's exit codes and JSON/SARIF output are
//! exercised end-to-end via `CARGO_BIN_EXE_sigmo-lint`.
//!
//! Fixtures live in `crates/sigmo-lint/fixtures/` (not under `tests/`):
//! harness directories are context-exempt for the reachability-gated
//! rules, and fixtures must be analyzed as product code.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(rel: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    (format!("crates/sigmo-lint/fixtures/{rel}"), src)
}

/// Asserts a bad fixture trips `rule` at least `min` times and no other
/// rule at all.
fn assert_trips(rel: &str, rule: &str, min: usize) {
    let (path, src) = fixture(rel);
    let diags = sigmo_lint::analyze_source(&path, &src);
    assert!(
        diags.len() >= min,
        "{rel}: expected >= {min} diagnostics, got {diags:?}"
    );
    for d in &diags {
        assert_eq!(d.rule, rule, "{rel}: unexpected co-firing rule: {d:?}");
        assert!(d.line > 0 && d.column > 0, "{rel}: missing span: {d:?}");
    }
}

#[test]
fn per_bit_probe_fixture_trips_only_its_rule() {
    // The probe sits in a helper reached through the call graph, not in
    // the launch closure itself — this exercises interprocedural
    // reachability end-to-end.
    assert_trips("per_bit_probe/candidates.rs", "per-bit-probe", 1);
}

#[test]
fn atomic_ordering_fixture_trips_only_its_rule() {
    assert_trips("atomic_ordering/counters.rs", "atomic-ordering", 2);
}

#[test]
fn uncharged_access_fixture_trips_only_its_rule() {
    assert_trips("uncharged_access/filter.rs", "uncharged-access", 1);
}

#[test]
fn unsafe_safety_fixture_trips_only_its_rule() {
    assert_trips(
        "unsafe_safety/engine.rs",
        "unsafe-requires-safety-comment",
        1,
    );
}

#[test]
fn alloc_in_kernel_fixture_trips_only_its_rule() {
    assert_trips("alloc_in_kernel/join.rs", "alloc-in-kernel", 2);
}

#[test]
fn unbounded_kernel_loop_fixture_trips_only_its_rule() {
    // One bare DFS loop in a call-graph-reached helper + one
    // kernel-closure `while`, both unconsulted.
    assert_trips("unbounded_kernel_loop/join.rs", "unbounded-kernel-loop", 2);
}

#[test]
fn nondet_collection_iter_fixture_trips_only_its_rule() {
    assert_trips(
        "nondet_collection_iter/summary.rs",
        "nondet-collection-iter",
        1,
    );
}

#[test]
fn float_accumulation_fixture_trips_only_its_rule() {
    assert_trips("float_accumulation/summary.rs", "float-accumulation", 2);
}

#[test]
fn relaxed_read_in_report_fixture_trips_only_its_rule() {
    assert_trips(
        "relaxed_read_in_report/counters.rs",
        "relaxed-read-in-report",
        2,
    );
}

#[test]
fn wall_clock_in_result_fixture_trips_only_its_rule() {
    assert_trips("wall_clock_in_result/engine.rs", "wall-clock-in-result", 2);
}

#[test]
fn unordered_par_collect_fixture_trips_only_its_rule() {
    assert_trips(
        "unordered_par_collect/stream.rs",
        "unordered-par-collect",
        1,
    );
}

#[test]
fn bad_pragma_fixture_trips_only_bad_pragma() {
    assert_trips("bad_pragma/engine.rs", "bad-pragma", 1);
}

#[test]
fn truncated_pragma_at_eof_trips_bad_pragma() {
    let (_, src) = fixture("bad_pragma/truncated.rs");
    assert!(!src.ends_with('\n'), "fixture must end without a newline");
    assert_trips("bad_pragma/truncated.rs", "bad-pragma", 1);
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let (path, src) = fixture("clean/filter.rs");
    let diags = sigmo_lint::analyze_source(&path, &src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn pragma_allowed_fixture_produces_no_diagnostics() {
    let (path, src) = fixture("allowed/naive.rs");
    let diags = sigmo_lint::analyze_source(&path, &src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn eof_trailing_pragma_fixture_produces_no_diagnostics() {
    // The satellite bug: a trailing pragma on a final line with no
    // terminating newline must still parse and suppress.
    let (path, src) = fixture("allowed/eof_pragma.rs");
    assert!(!src.ends_with('\n'), "fixture must end without a newline");
    let diags = sigmo_lint::analyze_source(&path, &src);
    assert!(diags.is_empty(), "{diags:?}");
}

fn workspace_root() -> PathBuf {
    // crates/sigmo-lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

#[test]
fn real_workspace_is_clean() {
    let diags = sigmo_lint::analyze_workspace(&workspace_root());
    assert!(
        diags.is_empty(),
        "workspace violations:\n{}",
        sigmo_lint::render_human(&diags)
    );
}

#[test]
fn workspace_audit_completes_within_budget() {
    // The call-graph + reachability pass is part of the check.sh gate and
    // must stay interactive: the whole-workspace audit has a 5s budget.
    let start = std::time::Instant::now();
    let _ = sigmo_lint::analyze_workspace(&workspace_root());
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "workspace audit took {elapsed:?}, budget is 5s"
    );
}

/// Seeded-violation test: mutate a *real* reachable path — swap the
/// fault-injection plan's ordered containers for hash containers — and
/// the auditor must catch the hash-order iteration feeding
/// `FaultClusterReport`. This pins the audit to real code, not synthetic
/// fixtures: if reachability or binding detection regresses, this fails.
#[test]
fn seeded_hash_swap_in_fault_report_is_caught() {
    let path = workspace_root().join("crates/sigmo-cluster/src/fault.rs");
    let src = std::fs::read_to_string(&path).unwrap();
    assert!(src.contains("BTreeSet"), "fault.rs no longer uses BTreeSet");
    let mutated = src
        .replace("BTreeSet", "HashSet")
        .replace("BTreeMap", "HashMap");
    let diags = sigmo_lint::analyze_source("crates/sigmo-cluster/src/fault.rs", &mutated);
    assert!(
        diags.iter().any(|d| d.rule == "nondet-collection-iter"),
        "expected nondet-collection-iter on the mutated report merge, got {diags:?}"
    );
    // The pristine file stays clean (also covered by the workspace test).
    let clean = sigmo_lint::analyze_source("crates/sigmo-cluster/src/fault.rs", &src);
    assert!(clean.is_empty(), "{clean:?}");
}

/// Stripping the justification from a real determinism pragma must be
/// flagged: suppression of the determinism family without a written
/// rationale is itself a violation, so the workspace-clean gate fails on
/// unjustified suppressions.
#[test]
fn unjustified_suppression_in_real_file_is_caught() {
    let path = workspace_root().join("crates/sigmo-device/src/summary.rs");
    let src = std::fs::read_to_string(&path).unwrap();
    let needle = "allow(float-accumulation) —";
    assert!(
        src.contains(needle),
        "summary.rs lost its justified float-accumulation pragma"
    );
    // Cut the pragma line right after the closing parenthesis: the rule
    // list survives, the justification does not.
    let at = src.find(needle).unwrap() + "allow(float-accumulation)".len();
    let eol = src[at..].find('\n').unwrap() + at;
    let mutated = format!("{}{}", &src[..at], &src[eol..]);
    let diags = sigmo_lint::analyze_source("crates/sigmo-device/src/summary.rs", &mutated);
    assert!(
        diags.iter().any(|d| d.rule == "unjustified-pragma"),
        "expected unjustified-pragma, got {diags:?}"
    );
}

#[test]
fn workspace_walk_sees_the_kernel_modules_but_not_vendor() {
    let files = sigmo_lint::walk_workspace(&workspace_root());
    let names: Vec<String> = files
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    assert!(names
        .iter()
        .any(|n| n.ends_with("sigmo-core/src/filter.rs")));
    assert!(names
        .iter()
        .any(|n| n.ends_with("sigmo-device/src/queue.rs")));
    assert!(!names.iter().any(|n| n.starts_with("vendor/")));
    assert!(!names.iter().any(|n| n.contains("/fixtures/")));
    assert!(!names.iter().any(|n| n.starts_with("target/")));
}

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sigmo-lint"))
}

#[test]
fn binary_exits_nonzero_on_each_bad_fixture() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for rel in [
        "per_bit_probe/candidates.rs",
        "atomic_ordering/counters.rs",
        "uncharged_access/filter.rs",
        "unsafe_safety/engine.rs",
        "alloc_in_kernel/join.rs",
        "unbounded_kernel_loop/join.rs",
        "nondet_collection_iter/summary.rs",
        "float_accumulation/summary.rs",
        "relaxed_read_in_report/counters.rs",
        "wall_clock_in_result/engine.rs",
        "unordered_par_collect/stream.rs",
        "bad_pragma/engine.rs",
        "bad_pragma/truncated.rs",
    ] {
        let out = lint_bin().arg(fixtures.join(rel)).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(1),
            "{rel}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    let out = lint_bin()
        .arg("--root")
        .arg(workspace_root())
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("no violations"));
}

#[test]
fn binary_emits_json_diagnostics_with_spans() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let out = lint_bin()
        .arg("--format")
        .arg("json")
        .arg(fixtures.join("per_bit_probe/candidates.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.contains("\"rule\":\"per-bit-probe\""), "{stdout}");
    assert!(stdout.contains("\"line\":"), "{stdout}");
    assert!(stdout.contains("\"column\":"), "{stdout}");
    assert!(stdout.contains("candidates.rs"), "{stdout}");
}

#[test]
fn binary_emits_sarif_with_rules_and_results() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let out = lint_bin()
        .arg("--format")
        .arg("sarif")
        .arg(fixtures.join("wall_clock_in_result/engine.rs"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "violations exit 1 in every format"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\": \"2.1.0\""), "{stdout}");
    assert!(
        stdout.contains("\"ruleId\": \"wall-clock-in-result\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"physicalLocation\""), "{stdout}");
}

#[test]
fn binary_lists_all_rules() {
    let out = lint_bin().arg("--list-rules").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "per-bit-probe",
        "atomic-ordering",
        "uncharged-access",
        "unsafe-requires-safety-comment",
        "alloc-in-kernel",
        "unbounded-kernel-loop",
        "nondet-collection-iter",
        "float-accumulation",
        "relaxed-read-in-report",
        "wall-clock-in-result",
        "unordered-par-collect",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn binary_rejects_unknown_flags_with_usage_exit() {
    let out = lint_bin().arg("--bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
