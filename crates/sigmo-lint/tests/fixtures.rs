//! Fixture regression tests: every committed bad fixture must trip exactly
//! its rule, the good fixtures must stay silent, and the real workspace
//! must pass clean. The binary's exit codes and JSON output are exercised
//! end-to-end via `CARGO_BIN_EXE_sigmo-lint`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(rel: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    (format!("tests/fixtures/{rel}"), src)
}

/// Asserts a bad fixture trips `rule` at least `min` times and no other
/// rule at all.
fn assert_trips(rel: &str, rule: &str, min: usize) {
    let (path, src) = fixture(rel);
    let diags = sigmo_lint::analyze_source(&path, &src);
    assert!(
        diags.len() >= min,
        "{rel}: expected >= {min} diagnostics, got {diags:?}"
    );
    for d in &diags {
        assert_eq!(d.rule, rule, "{rel}: unexpected co-firing rule: {d:?}");
        assert!(d.line > 0 && d.column > 0, "{rel}: missing span: {d:?}");
    }
}

#[test]
fn per_bit_probe_fixture_trips_only_its_rule() {
    assert_trips("per_bit_probe/candidates.rs", "per-bit-probe", 1);
}

#[test]
fn atomic_ordering_fixture_trips_only_its_rule() {
    assert_trips("atomic_ordering/counters.rs", "atomic-ordering", 2);
}

#[test]
fn uncharged_access_fixture_trips_only_its_rule() {
    assert_trips("uncharged_access/filter.rs", "uncharged-access", 1);
}

#[test]
fn unsafe_safety_fixture_trips_only_its_rule() {
    assert_trips(
        "unsafe_safety/engine.rs",
        "unsafe-requires-safety-comment",
        1,
    );
}

#[test]
fn alloc_in_kernel_fixture_trips_only_its_rule() {
    assert_trips("alloc_in_kernel/join.rs", "alloc-in-kernel", 2);
}

#[test]
fn unbounded_kernel_loop_fixture_trips_only_its_rule() {
    // One bare DFS loop + one kernel-closure `while`, both unconsulted.
    assert_trips("unbounded_kernel_loop/join.rs", "unbounded-kernel-loop", 2);
}

#[test]
fn bad_pragma_fixture_trips_only_bad_pragma() {
    assert_trips("bad_pragma/engine.rs", "bad-pragma", 1);
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let (path, src) = fixture("clean/filter.rs");
    let diags = sigmo_lint::analyze_source(&path, &src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn pragma_allowed_fixture_produces_no_diagnostics() {
    let (path, src) = fixture("allowed/naive.rs");
    let diags = sigmo_lint::analyze_source(&path, &src);
    assert!(diags.is_empty(), "{diags:?}");
}

fn workspace_root() -> PathBuf {
    // crates/sigmo-lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

#[test]
fn real_workspace_is_clean() {
    let diags = sigmo_lint::analyze_workspace(&workspace_root());
    assert!(
        diags.is_empty(),
        "workspace violations:\n{}",
        sigmo_lint::render_human(&diags)
    );
}

#[test]
fn workspace_walk_sees_the_kernel_modules_but_not_vendor() {
    let files = sigmo_lint::walk_workspace(&workspace_root());
    let names: Vec<String> = files
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    assert!(names
        .iter()
        .any(|n| n.ends_with("sigmo-core/src/filter.rs")));
    assert!(names
        .iter()
        .any(|n| n.ends_with("sigmo-device/src/queue.rs")));
    assert!(!names.iter().any(|n| n.starts_with("vendor/")));
    assert!(!names.iter().any(|n| n.contains("/fixtures/")));
    assert!(!names.iter().any(|n| n.starts_with("target/")));
}

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sigmo-lint"))
}

#[test]
fn binary_exits_nonzero_on_each_bad_fixture() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for rel in [
        "per_bit_probe/candidates.rs",
        "atomic_ordering/counters.rs",
        "uncharged_access/filter.rs",
        "unsafe_safety/engine.rs",
        "alloc_in_kernel/join.rs",
        "unbounded_kernel_loop/join.rs",
        "bad_pragma/engine.rs",
    ] {
        let out = lint_bin().arg(fixtures.join(rel)).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(1),
            "{rel}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    let out = lint_bin()
        .arg("--root")
        .arg(workspace_root())
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("no violations"));
}

#[test]
fn binary_emits_json_diagnostics_with_spans() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let out = lint_bin()
        .arg("--format")
        .arg("json")
        .arg(fixtures.join("per_bit_probe/candidates.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.contains("\"rule\":\"per-bit-probe\""), "{stdout}");
    assert!(stdout.contains("\"line\":"), "{stdout}");
    assert!(stdout.contains("\"column\":"), "{stdout}");
    assert!(stdout.contains("candidates.rs"), "{stdout}");
}

#[test]
fn binary_lists_all_six_rules() {
    let out = lint_bin().arg("--list-rules").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "per-bit-probe",
        "atomic-ordering",
        "uncharged-access",
        "unsafe-requires-safety-comment",
        "alloc-in-kernel",
        "unbounded-kernel-loop",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn binary_rejects_unknown_flags_with_usage_exit() {
    let out = lint_bin().arg("--bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
