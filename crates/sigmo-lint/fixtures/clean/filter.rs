//! Good fixture: word-parallel scan, relaxed qualified atomics, charged
//! traffic, no allocation in the kernel closure. Must produce no
//! diagnostics despite living under the strictest file-name gates.

pub fn launch(queue: &Queue, bitmap: &Bitmap, n: usize, words: u64) {
    queue.parallel_for("good", "filter", n, 128, |row, counters| {
        let survivors = bitmap.row_any_in_range(row, 0, n);
        counters.add_word_reads(words, 8);
        if survivors {
            counters.add_instructions(1);
        }
    });
}

pub fn bump(flag: &AtomicU64, counters: &KernelCounters) -> u64 {
    counters.add_atomics(1);
    flag.fetch_add(1, Ordering::Relaxed)
}
