//! Bad fixture: wall-clock values captured into a report field — the
//! bits differ run to run. Must trip `wall-clock-in-result` and nothing
//! else.

pub fn run(work: &Work) -> RunReport {
    let t0 = Instant::now();
    let total = execute(work);
    RunReport {
        total,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}
