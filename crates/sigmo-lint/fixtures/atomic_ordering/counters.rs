//! Bad fixture: a SeqCst store and a bare (unqualified) ordering.
//! Must trip `atomic-ordering` (twice) and nothing else.

pub fn publish(flag: &AtomicU64) -> u64 {
    flag.store(1, Ordering::SeqCst);
    flag.load(Relaxed)
}
