//! Bad fixture: relaxed atomic loads flowing into a counter snapshot —
//! a read racing its writers can publish a partial total. Must trip
//! `relaxed-read-in-report` and nothing else.

pub fn snapshot(instructions: &AtomicU64, bytes: &AtomicU64) -> CounterSnapshot {
    CounterSnapshot {
        instructions: instructions.load(Ordering::Relaxed),
        bytes: bytes.load(Ordering::Relaxed),
    }
}
