//! Bad fixture: kernel loops that no budget could ever trip.

fn dfs_pair(data: &CsrGo, mapping: &mut [u32]) -> u64 {
    let mut matches = 0u64;
    let mut depth = 0usize;
    // A DFS loop with no governor consult: a wildcard-clique query spins
    // here past any deadline.
    loop {
        match advance(data, mapping, depth) {
            Some(d) => {
                mapping[depth] = d;
                depth += 1;
            }
            None => {
                if depth == 0 {
                    return matches;
                }
                depth -= 1;
            }
        }
        matches += 1;
    }
}

fn launch(q: &Queue, gov: &Governor, data: &CsrGo) {
    q.parallel_for_work_group_until("join", "join", groups, 4, 8, || gov.stopped(), |ctx| {
        while frontier_grows(ctx) {
            expand(ctx);
        }
        // The DFS helper is reached through the call graph, not the
        // closure text: reachability must carry the rule into it.
        let mut mapping = [0u32; 8];
        dfs_pair(data, &mut mapping);
    });
}
