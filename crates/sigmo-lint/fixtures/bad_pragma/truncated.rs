//! Bad fixture: a pragma whose allow-list is truncated at EOF (no
//! closing parenthesis, no trailing newline). Honoring nothing is
//! correct, but the pragma must surface as `bad-pragma`, not vanish.

pub fn fine() {}
// sigmo-lint: allow(per-bit-probe