//! Bad fixture: a pragma naming a rule the analyzer does not know.
//! Must trip `bad-pragma` — typos must not silently disable enforcement.

// sigmo-lint: allow(per-bit-prob) — misspelled rule name
pub fn fine() {}
