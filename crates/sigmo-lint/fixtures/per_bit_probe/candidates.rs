//! Bad fixture: the classic per-column candidate scan that PR 1 removed,
//! reached *interprocedurally* — the launch closure calls a helper, so
//! only call-graph reachability (not the closure's own text or a
//! file-name gate) connects the violation to kernel context. Must trip
//! `per-bit-probe` and nothing else: the helper charges its word traffic,
//! keeping `uncharged-access` quiet.

pub fn launch(queue: &Queue, bitmap: &Bitmap, rows: usize, n: usize) {
    queue.parallel_for("bad", "filter", rows, 128, |row, counters| {
        let survivors = count_candidates(bitmap, row, 0, n, counters);
        counters.add_instructions(survivors as u64);
    });
}

fn count_candidates(
    bitmap: &Bitmap,
    row: usize,
    lo: usize,
    hi: usize,
    counters: &KernelCounters,
) -> usize {
    counters.add_word_reads((hi - lo) as u64, 8);
    let mut n = 0;
    for col in lo..hi {
        if bitmap.get(row, col) {
            n += 1;
        }
    }
    n
}
