//! Bad fixture: heap allocation inside a kernel closure. The counters are
//! charged (so `uncharged-access` stays quiet) — must trip
//! `alloc-in-kernel` (twice) and nothing else.

pub fn launch(queue: &Queue, n: usize) {
    queue.parallel_for("bad", "join", n, 128, |i, counters| {
        let mut scratch = Vec::new();
        scratch.push(i);
        counters.add_instructions(scratch.len() as u64);
    });
}
