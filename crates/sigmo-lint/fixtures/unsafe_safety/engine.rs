//! Bad fixture: an `unsafe` block with no SAFETY comment.
//! Must trip `unsafe-requires-safety-comment` and nothing else.

pub fn read_first(xs: &[u64]) -> u64 {
    unsafe { *xs.as_ptr() }
}
