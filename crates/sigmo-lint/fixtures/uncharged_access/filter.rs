//! Bad fixture: a word-parallel row scan in a kernel-reachable helper
//! that never charges the device counters. Must trip `uncharged-access`
//! and nothing else.

pub fn launch(queue: &Queue, bitmap: &Bitmap, rows: usize, n: usize) {
    queue.parallel_for("bad", "filter", rows, 128, |row, counters| {
        if survivors(bitmap, row, 0, n) {
            counters.add_instructions(1);
        }
    });
}

fn survivors(bitmap: &Bitmap, row: usize, lo: usize, hi: usize) -> bool {
    bitmap.row_any_in_range(row, lo, hi)
}
