//! Good fixture: a kernel-reachable per-bit oracle under a documented
//! multi-rule pragma. The standalone pragma covers the whole fn scope and
//! names every rule the oracle would otherwise trip; no diagnostics
//! expected.

pub fn launch(queue: &Queue, bitmap: &Bitmap, rows: usize, n: usize) {
    queue.parallel_for("oracle", "verify", rows, 128, |row, counters| {
        let found = enumerate(bitmap, row, 0, n);
        counters.add_instructions(found.len() as u64);
    });
}

// sigmo-lint: allow(per-bit-probe, uncharged-access, alloc-in-kernel) —
// per-bit oracle kept for differential testing of the word-parallel scan;
// deliberately unmodeled, so its probes are never charged.
pub fn enumerate(bitmap: &Bitmap, row: usize, lo: usize, hi: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for col in lo..hi {
        if bitmap.get(row, col) {
            out.push(col);
        }
    }
    out
}
