//! Good fixture: a trailing pragma on the final line of a file with no
//! terminating newline — the EOF-flush path. Must produce no diagnostics.

pub fn probe(flag: &AtomicU64) -> u64 { flag.load(Relaxed) } // sigmo-lint: allow(atomic-ordering) — init-time probe, no concurrent writer yet