//! Bad fixture: a report merge iterating a HashMap — hash order leaks
//! straight into the reported totals vector. Must trip
//! `nondet-collection-iter` and nothing else.

pub fn merge(records: &[Record]) -> RunReport {
    let mut by_kernel: HashMap<String, u64> = HashMap::new();
    for r in records {
        *by_kernel.entry(r.name.clone()).or_insert(0) += r.count;
    }
    let mut totals = Vec::new();
    for (name, count) in by_kernel.iter() {
        totals.push((name.clone(), *count));
    }
    RunReport { totals }
}
