//! Bad fixture: a parallel `for_each` pushing into a shared, locked
//! collection — results arrive in scheduling (completion) order, so the
//! merged vector differs across thread counts. Must trip
//! `unordered-par-collect` and nothing else.

pub fn collect_matches(chunks: &[Chunk], out: &Mutex<Vec<u64>>) {
    chunks
        .par_iter()
        .for_each(|chunk| out.lock().extend(chunk.matches()));
}
