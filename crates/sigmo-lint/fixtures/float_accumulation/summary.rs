//! Bad fixture: float `+=` and a float sum on the result surface. Must
//! trip `float-accumulation` and nothing else.

pub fn merge(records: &[Record]) -> RunReport {
    let mut wall_s: f64 = 0.0;
    for r in records {
        wall_s += r.wall_s;
    }
    let sim_s = records.iter().map(|r| r.sim_s).sum::<f64>();
    RunReport { wall_s, sim_s }
}
