//! Comment pragmas — the audited escape hatch for deny-by-default
//! diagnostics. A pragma is a comment naming the analyzer, the word
//! `allow`, and a parenthesized rule list (spelled out here in prose so
//! this very file does not read as one).
//!
//! Two placements are recognized:
//!
//! * **trailing** — on the same line as the flagged code: suppresses that
//!   rule on that line only;
//! * **standalone** — a comment line of its own: suppresses the rule on
//!   the next code line, and, when that line opens a brace scope (a `fn`
//!   item, a loop, a kernel closure), on the entire scope through its
//!   matching `}`. A `fn` whose signature spans several lines is covered
//!   in full: the scope search runs to the first `{` (or a `;` for
//!   declarations).
//!
//! Several rules may be allowed at once: `allow(rule-a, rule-b)`. Text
//! after the closing parenthesis is the pragma's *justification* — for
//! most rules it is free-form but expected; for the determinism family
//! ([`crate::rules::Rule::requires_justification`]) it is **mandatory**,
//! and a suppression without one is itself a diagnostic
//! (`unjustified-pragma`). A pragma naming a rule the analyzer does not
//! know, or one whose allow-list never closes its parenthesis (e.g. a
//! truncated final line), is reported as `bad-pragma` — typos and
//! truncation cannot silently disable enforcement. Pragmas on a final
//! line without a trailing newline parse like any other: the lexer
//! flushes its last line at EOF.

use crate::lexer::{matching_brace, SourceFile};

/// One parsed pragma.
#[derive(Debug)]
pub struct Pragma {
    /// 0-based line the pragma comment sits on.
    pub line: usize,
    /// Rule names listed in `allow(...)`. Empty for malformed pragmas.
    pub rules: Vec<String>,
    /// True when the pragma shares its line with code (trailing form).
    pub trailing: bool,
    /// Justification text after the closing parenthesis, stripped of
    /// leading separators (dashes, colons). `None` when absent or blank.
    pub justification: Option<String>,
    /// True when the pragma was recognized but could not be parsed (an
    /// allow-list that never closes). Reported as `bad-pragma` by the
    /// driver; suppresses nothing.
    pub malformed: bool,
}

/// All pragmas of a file, in line order — including malformed ones, which
/// the driver reports instead of honoring.
pub fn parse_pragmas(file: &SourceFile) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (n, line) in file.lines.iter().enumerate() {
        let Some(comment) = &line.comment else {
            continue;
        };
        let Some(at) = comment.find("sigmo-lint:") else {
            continue;
        };
        let rest = comment[at + "sigmo-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let trailing = !line.code.trim().is_empty();
        let Some(rest) = rest.strip_prefix('(') else {
            // The allow keyword with no parenthesized list: intent is
            // unmistakable, syntax is not — report rather than guess.
            out.push(malformed(n, trailing));
            continue;
        };
        let Some(close) = rest.find(')') else {
            // An allow-list that never closes (e.g. truncated at EOF)
            // must not vanish silently: nothing is suppressed, and the
            // driver reports the pragma itself.
            out.push(malformed(n, trailing));
            continue;
        };
        let rules = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let justification = rest[close + 1..]
            .trim_start_matches(|c: char| {
                c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | '.' | ',')
            })
            .trim();
        out.push(Pragma {
            line: n,
            rules,
            trailing,
            justification: (!justification.is_empty()).then(|| justification.to_string()),
            malformed: false,
        });
    }
    out
}

fn malformed(line: usize, trailing: bool) -> Pragma {
    Pragma {
        line,
        rules: Vec::new(),
        trailing,
        justification: None,
        malformed: true,
    }
}

/// Resolved suppression spans: for each rule name, the 0-based line ranges
/// it is allowed on.
#[derive(Debug, Default)]
pub struct AllowSet {
    spans: Vec<(String, std::ops::RangeInclusive<usize>)>,
}

impl AllowSet {
    /// Builds the suppression spans for a file from its pragmas.
    /// Malformed pragmas suppress nothing.
    pub fn build(file: &SourceFile, pragmas: &[Pragma]) -> Self {
        let mut spans = Vec::new();
        for p in pragmas {
            if p.malformed {
                continue;
            }
            let range = if p.trailing {
                p.line..=p.line
            } else {
                match target_scope(file, p.line) {
                    Some(r) => r,
                    None => continue,
                }
            };
            for rule in &p.rules {
                spans.push((rule.clone(), range.clone()));
            }
        }
        AllowSet { spans }
    }

    /// True when `rule` is suppressed on 0-based `line`.
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.spans
            .iter()
            .any(|(r, span)| r == rule && span.contains(&line))
    }
}

/// The line range a standalone pragma at `pragma_line` covers: from the
/// next code line through the end of the scope it opens (if any).
fn target_scope(file: &SourceFile, pragma_line: usize) -> Option<std::ops::RangeInclusive<usize>> {
    let first =
        (pragma_line + 1..file.lines.len()).find(|&n| !file.lines[n].code.trim().is_empty())?;
    // Scan from the start of that line for the first `{` or `;`: a brace
    // extends the span to its matching close, a semicolon (or nothing)
    // limits it to the statement's last line.
    let from = file.line_starts[first];
    let bytes = file.code.as_bytes();
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                let close = matching_brace(&file.code, i)?;
                return Some(first..=file.line_of(close));
            }
            b';' => return Some(first..=file.line_of(i)),
            _ => i += 1,
        }
    }
    Some(first..=file.lines.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_pragma_covers_its_line_only() {
        let f = lex(
            "x.rs",
            "probe(); // sigmo-lint: allow(per-bit-probe) — oracle\nprobe();\n",
        );
        let allow = AllowSet::build(&f, &parse_pragmas(&f));
        assert!(allow.allows("per-bit-probe", 0));
        assert!(!allow.allows("per-bit-probe", 1));
        assert!(!allow.allows("other-rule", 0));
    }

    #[test]
    fn standalone_pragma_covers_the_following_scope() {
        let src = "\
// sigmo-lint: allow(uncharged-access) — charged by the caller
fn probe_all(
    x: u32,
) {
    touch();
    touch();
}
fn other() { touch(); }
";
        let f = lex("x.rs", src);
        let allow = AllowSet::build(&f, &parse_pragmas(&f));
        for line in 1..=6 {
            assert!(allow.allows("uncharged-access", line), "line {line}");
        }
        assert!(!allow.allows("uncharged-access", 7));
    }

    #[test]
    fn standalone_pragma_on_statement_covers_statement() {
        let src = "// sigmo-lint: allow(atomic-ordering) — init fence\nuse std::sync::atomic::Ordering::SeqCst;\nother();\n";
        let f = lex("x.rs", src);
        let allow = AllowSet::build(&f, &parse_pragmas(&f));
        assert!(allow.allows("atomic-ordering", 1));
        assert!(!allow.allows("atomic-ordering", 2));
    }

    #[test]
    fn multiple_rules_in_one_pragma() {
        let f = lex(
            "x.rs",
            "x(); // sigmo-lint: allow(rule-a, rule-b): both fine here\n",
        );
        let pragmas = parse_pragmas(&f);
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].rules, ["rule-a", "rule-b"]);
        let allow = AllowSet::build(&f, &pragmas);
        assert!(allow.allows("rule-a", 0));
        assert!(allow.allows("rule-b", 0));
    }

    #[test]
    fn justification_text_is_captured_and_stripped() {
        let f = lex(
            "x.rs",
            "x(); // sigmo-lint: allow(rule-a) — wall_time is display-only\ny(); // sigmo-lint: allow(rule-b): charged by caller\nz(); // sigmo-lint: allow(rule-c)\n",
        );
        let p = parse_pragmas(&f);
        assert_eq!(
            p[0].justification.as_deref(),
            Some("wall_time is display-only")
        );
        assert_eq!(p[1].justification.as_deref(), Some("charged by caller"));
        assert_eq!(p[2].justification, None);
    }

    #[test]
    fn pragma_on_final_line_without_newline_still_parses() {
        // The satellite bug report: a trailing pragma on an EOF-terminated
        // last line. The lexer flushes its final line, so the pragma must
        // parse and suppress exactly like a newline-terminated one.
        let f = lex(
            "x.rs",
            "probe(); // sigmo-lint: allow(per-bit-probe) — oracle",
        );
        let p = parse_pragmas(&f);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rules, ["per-bit-probe"]);
        assert!(!p[0].malformed);
        let allow = AllowSet::build(&f, &p);
        assert!(allow.allows("per-bit-probe", 0));
    }

    #[test]
    fn standalone_pragma_at_eof_without_newline_parses() {
        let f = lex("x.rs", "fn f() {}\n// sigmo-lint: allow(rule-a) — why");
        let p = parse_pragmas(&f);
        assert_eq!(p.len(), 1);
        assert!(!p[0].trailing);
    }

    #[test]
    fn unterminated_allow_list_is_reported_not_dropped() {
        // Truncated at EOF mid-list: honoring nothing is correct, but the
        // pragma must surface as malformed instead of vanishing.
        let f = lex("x.rs", "probe(); // sigmo-lint: allow(per-bit-probe");
        let p = parse_pragmas(&f);
        assert_eq!(p.len(), 1);
        assert!(p[0].malformed);
        assert!(p[0].rules.is_empty());
        let allow = AllowSet::build(&f, &p);
        assert!(!allow.allows("per-bit-probe", 0));
    }

    #[test]
    fn allow_without_list_is_reported() {
        let f = lex("x.rs", "probe(); // sigmo-lint: allow everything\n");
        let p = parse_pragmas(&f);
        assert_eq!(p.len(), 1);
        assert!(p[0].malformed);
    }

    #[test]
    fn doc_comment_mention_is_not_a_pragma() {
        let f = lex("x.rs", "// the sigmo-lint analyzer checks this\nx();\n");
        assert!(parse_pragmas(&f).is_empty());
    }
}
