//! Lexical call-graph construction over the workspace index.
//!
//! The analyzer has no type information (no `syn`, no rustc), so call
//! edges are *name-based*: an identifier immediately followed by `(` in
//! the blanked code view is a call of that name, and it resolves to every
//! `fn` of that name anywhere in the workspace. This over-approximates —
//! two unrelated `fn len` items alias — but over-approximation is the
//! right failure mode for an audit: reachability can only grow, so a
//! violation on a genuinely reachable path is never missed because
//! resolution was too timid. The noise is bounded in practice by two
//! choices:
//!
//! * ubiquitous method names with no workspace definition (`push`, `get`
//!   on std types) resolve to nothing and add no edges;
//! * names defined in *many* places (more than [`AMBIGUITY_CAP`] `fn`s)
//!   resolve only within the calling file — cross-file fan-out through a
//!   name that common says more about the name than about the call;
//! * edges respect the **crate dependency direction**: a call in crate
//!   `C` can only resolve into crate `D` when `C`'s sources actually
//!   reference `D` (an identifier like `sigmo_graph` in a `use` or
//!   path). `rustc` would reject the call otherwise, so a same-named
//!   `fn` in a crate the caller cannot see (`sigmo-baselines`' CPU
//!   reference `set`/`iter`, the linter's own `load`) is provably not
//!   the callee. Files outside `crates/` are unconstrained.
//!
//! Macro invocations (`name!(…)`) and control keywords are not calls.

use crate::index::Workspace;
use crate::lexer;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// A function node: (file index, fn index) into the [`Workspace`].
pub type FnRef = (usize, usize);

/// Names that look like calls but never are.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "where", "impl", "pub", "use", "mod", "struct", "enum",
    "trait", "const", "static", "type", "crate", "self", "Self", "super", "dyn", "unsafe", "async",
    "await", "box",
];

/// A name defined by more `fn` items than this resolves only within the
/// calling file (see module docs).
pub const AMBIGUITY_CAP: usize = 6;

/// Names of ubiquitous std trait methods. A call spelled through one of
/// these (`x.clone()`, `T::from(v)`) dispatches on a type the lexical
/// analyzer cannot see, and nearly every workspace type implements them —
/// so cross-file resolution would connect unrelated impls (a
/// `From<MoleculeError>` is not on a kernel path because a kernel closure
/// converts an error). They resolve within the calling file only.
const TRAIT_METHODS: &[&str] = &[
    "from",
    "into",
    "to_string",
    "from_str",
    "from_iter",
    "fmt",
    "write_str",
    "clone",
    "default",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "drop",
    "deref",
    "deref_mut",
    "index",
    "index_mut",
    "as_ref",
    "as_mut",
    "borrow",
    "borrow_mut",
    "to_owned",
    "extend",
];

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Per file, per fn: the set of callee names in its body.
    pub callees: Vec<Vec<BTreeSet<String>>>,
    /// Per file: the set of names called inside kernel-launch closures
    /// (the seeds of kernel reachability). Empty for context-exempt files.
    pub kernel_seed_names: Vec<BTreeSet<String>>,
    /// Every `fn` name to its definitions, workspace-wide.
    pub defs: BTreeMap<String, Vec<FnRef>>,
    /// Per file: the crate it belongs to (see [`crate::index::crate_of`]).
    pub file_crate: Vec<String>,
    /// Per crate: the workspace crates its sources reference (itself
    /// included) — the visibility set for cross-crate call edges.
    pub crate_refs: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the call graph for an indexed workspace.
    pub fn build(ws: &Workspace) -> Self {
        let mut defs: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (ni, item) in file.fns.iter().enumerate() {
                defs.entry(item.name.clone()).or_default().push((fi, ni));
            }
        }
        let callees = ws
            .files
            .iter()
            .map(|file| {
                file.fns
                    .iter()
                    .map(|item| callee_names(&file.file.code, item.body.clone()))
                    .collect()
            })
            .collect();
        let kernel_seed_names = ws
            .files
            .iter()
            .map(|file| {
                if file.context_exempt {
                    BTreeSet::new()
                } else {
                    file.kernel_closures
                        .iter()
                        .flat_map(|r| callee_names(&file.file.code, r.clone()))
                        .collect()
                }
            })
            .collect();
        let file_crate: Vec<String> = ws
            .files
            .iter()
            .map(|f| crate::index::crate_of(&f.file.path).to_string())
            .collect();
        // A crate "references" every workspace crate whose underscored
        // name appears as an identifier in any of its files (use items,
        // qualified paths). Dash and underscore spellings are unified.
        let crate_names: BTreeSet<String> = file_crate.iter().cloned().collect();
        let mut crate_refs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            let refs = crate_refs.entry(file_crate[fi].clone()).or_default();
            refs.insert(file_crate[fi].clone());
            for id in lexer::idents(&file.file.code) {
                let dashed = id.replace('_', "-");
                if crate_names.contains(&dashed) {
                    refs.insert(dashed);
                }
            }
        }
        CallGraph {
            callees,
            kernel_seed_names,
            defs,
            file_crate,
            crate_refs,
        }
    }

    /// Resolves a callee name from `caller_file` to definition nodes:
    /// defs in crates the caller cannot reference are excluded, and a
    /// name that stays ambiguous beyond [`AMBIGUITY_CAP`] resolves only
    /// within the calling file.
    pub fn resolve(&self, name: &str, caller_file: usize) -> Vec<FnRef> {
        let Some(nodes) = self.defs.get(name) else {
            return Vec::new();
        };
        if TRAIT_METHODS.contains(&name) {
            return nodes
                .iter()
                .copied()
                .filter(|(fi, _)| *fi == caller_file)
                .collect();
        }
        let caller_crate = &self.file_crate[caller_file];
        let visible: Vec<FnRef> = nodes
            .iter()
            .copied()
            .filter(|&(fi, _)| self.crate_visible(caller_crate, &self.file_crate[fi]))
            .collect();
        if visible.len() > AMBIGUITY_CAP {
            visible
                .into_iter()
                .filter(|(fi, _)| *fi == caller_file)
                .collect()
        } else {
            visible
        }
    }

    /// True when code in `caller` crate can name items of `def` crate.
    /// The root pseudo-crate (`""`, files outside `crates/`) is
    /// unconstrained in both directions.
    fn crate_visible(&self, caller: &str, def: &str) -> bool {
        caller == def
            || caller.is_empty()
            || def.is_empty()
            || self
                .crate_refs
                .get(caller)
                .is_some_and(|refs| refs.contains(def))
    }
}

/// All callee names in `range` of the blanked code: identifiers whose next
/// non-whitespace byte is `(`, excluding keywords and macro invocations.
pub fn callee_names(code: &str, range: Range<usize>) -> BTreeSet<String> {
    let bytes = code.as_bytes();
    let mut out = BTreeSet::new();
    let mut i = range.start;
    while i < range.end {
        if lexer::is_ident_byte(bytes[i]) && !bytes[i].is_ascii_digit() {
            let start = i;
            while i < range.end && lexer::is_ident_byte(bytes[i]) {
                i += 1;
            }
            let name = &code[start..i];
            let mut j = i;
            while j < range.end && (bytes[j] == b' ' || bytes[j] == b'\t') {
                j += 1;
            }
            // `name(` is a call; `name!(` is a macro; `name::<T>(` is a
            // call spelled with a turbofish.
            let next = bytes.get(j).copied();
            let is_call = match next {
                Some(b'(') => true,
                Some(b':')
                    if bytes.get(j + 1) == Some(&b':') && bytes.get(j + 2) == Some(&b'<') =>
                {
                    turbofish_call(bytes, j + 2, range.end)
                }
                _ => false,
            };
            if is_call && !KEYWORDS.contains(&name) {
                out.insert(name.to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// True when the `<…>` starting at `open` closes and is followed by `(`.
fn turbofish_call(bytes: &[u8], open: usize, end: usize) -> bool {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    let mut j = i + 1;
                    while j < end && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    return bytes.get(j) == Some(&b'(');
                }
            }
            b';' | b'{' => return false,
            _ => {}
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Workspace;

    #[test]
    fn extracts_plain_method_and_turbofish_calls() {
        let code = "let x = helper(a); y.method(b); z.sum::<u64>(); if cond(x) { vec![1]; m!(2); }";
        let names = callee_names(code, 0..code.len());
        assert!(names.contains("helper"));
        assert!(names.contains("method"));
        assert!(names.contains("sum"));
        assert!(names.contains("cond"));
        assert!(!names.contains("if"));
        assert!(!names.contains("vec"));
        assert!(!names.contains("m"));
    }

    #[test]
    fn builds_defs_and_kernel_seeds() {
        let src = "\
fn host(q: &Queue) {
    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {
        probe_row(i, c);
    });
}
fn probe_row(i: usize, c: &KernelCounters) {
    c.add_instructions(1);
}
";
        let ws = Workspace::from_sources([("crates/x/src/filter.rs", src)]);
        let cg = CallGraph::build(&ws);
        assert!(cg.defs.contains_key("probe_row"));
        // Seeds are the names called *inside the launch closure* — the
        // helper's own callees are reached transitively (see `reach`).
        assert!(cg.kernel_seed_names[0].contains("probe_row"));
        assert!(!cg.kernel_seed_names[0].contains("add_instructions"));
        assert_eq!(cg.resolve("probe_row", 0).len(), 1);
        assert!(cg.resolve("no_such_fn", 0).is_empty());
    }

    #[test]
    fn edges_respect_crate_reference_direction() {
        // `core` references `graph`; neither references `baselines`.
        let core = "use graph::bitmap;\nfn run() { set(1); }";
        let graph = "pub fn set(x: u32) {}";
        let baselines = "pub fn set(x: u32) {}\nfn own() { set(2); }";
        let ws = Workspace::from_sources([
            ("crates/core/src/engine.rs", core),
            ("crates/graph/src/bitmap.rs", graph),
            ("crates/baselines/src/bitset.rs", baselines),
        ]);
        let cg = CallGraph::build(&ws);
        let core_fi = 1; // files sort by path: baselines, core, graph
        let resolved = cg.resolve("set", core_fi);
        assert_eq!(resolved.len(), 1, "{resolved:?}");
        assert_eq!(cg.file_crate[resolved[0].0], "graph");
        // From inside baselines, only its own `set` is visible.
        let from_baselines = cg.resolve("set", 0);
        assert_eq!(from_baselines, vec![(0, 0)]);
    }

    #[test]
    fn ambiguous_names_resolve_within_file_only() {
        let mk = |n: usize| format!("fn get() {{ work_{n}(); }}");
        let sources: Vec<(String, String)> = (0..AMBIGUITY_CAP + 2)
            .map(|n| (format!("crates/x/src/f{n}.rs"), mk(n)))
            .collect();
        let ws = Workspace::from_sources(sources);
        let cg = CallGraph::build(&ws);
        let resolved = cg.resolve("get", 3);
        assert_eq!(resolved, vec![(3, 0)]);
    }
}
