//! **alloc-in-kernel** — no heap allocation in kernel-reachable code.
//!
//! A GPU kernel cannot call the host allocator; in SYCL/CUDA the
//! candidate-set, GMCR and join kernels work entirely in pre-allocated
//! device buffers and registers. The CPU reproduction keeps the same
//! discipline so the counter model stays proportional to the traffic a
//! device kernel would actually generate — a `Vec::push` inside a
//! `parallel_for` body is host-only convenience that the real kernel
//! could not express, and its cost would be invisible to the model.
//!
//! Detected: allocation constructors/adaptors (`Vec::new`, `vec![]`,
//! `.collect()`, `.push(..)`, `format!`, …) anywhere in kernel context:
//! launch closure bodies *and* every function the call graph reaches from
//! them, so an allocation hidden in a helper two files away is caught.
//! `join_bfs.rs` carries a documented pragma: its BFS frontier
//! materialization is the memory blow-up §4.6 measures in order to reject
//! the BFS strategy.

use super::{find_all, Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;

/// See the module docs.
pub struct AllocInKernel;

const ALLOC_TOKENS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec!",
    "Box::new(",
    "String::new(",
    "String::from(",
    "format!",
    ".to_string(",
    ".to_vec(",
    ".to_owned(",
    ".collect(",
    ".push(",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
    "VecDeque::new(",
];

impl Rule for AllocInKernel {
    fn name(&self) -> &'static str {
        "alloc-in-kernel"
    }

    fn description(&self) -> &'static str {
        "heap allocation in kernel-reachable code (launch closures and everything they call)"
    }

    fn check(&self, file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        for range in &ctx.kernel {
            for tok in ALLOC_TOKENS {
                for hit in find_all(&file.file, range.clone(), tok) {
                    let (line, column) = file.file.line_col(hit + 1);
                    out.push(Diagnostic {
                        rule: "alloc-in-kernel",
                        file: file.file.path.clone(),
                        line,
                        column,
                        message: format!(
                            "heap allocation `{}` in kernel-reachable code: device kernels \
                             cannot call the allocator — pre-allocate outside the launch or \
                             use fixed-size scratch (LocalMem)",
                            tok.trim_start_matches('.').trim_end_matches('('),
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&AllocInKernel, "crates/sigmo-core/src/filter.rs", src)
    }

    #[test]
    fn vec_new_in_kernel_closure_is_flagged() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {\n        let mut tmp = Vec::new();\n        tmp.push(i);\n    });\n}\n",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("Vec::new"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn allocation_in_reachable_helper_is_flagged() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {\n        helper(i, c);\n    });\n}\nfn helper(i: usize, c: &K) {\n    let s = i.to_string();\n    c.add_instructions(s.len() as u64);\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("to_string"));
        assert_eq!(d[0].line, 7);
    }

    #[test]
    fn collect_in_work_group_closure_is_flagged() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for_work_group(\"k\", \"join\", g, 4, 8, |ctx| {\n        let xs: Vec<u32> = (0..4).collect();\n        drop(xs);\n    });\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("collect"));
    }

    #[test]
    fn allocation_outside_the_closure_is_fine() {
        let d = run(
            "fn launch(q: &Queue) {\n    let scratch = vec![0u64; 64];\n    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {\n        c.add_instructions(scratch[i % 64]);\n    });\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allocation_in_unreachable_fn_is_fine() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| { c.add_instructions(1); });\n}\nfn host_setup() -> Vec<u64> {\n    let mut v = Vec::new();\n    v.push(1);\n    v\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_allocating_kernel_is_clean() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {\n        c.add_word_reads(1, 8);\n    });\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_modules_are_skipped() {
        let d = run(
            "#[cfg(test)]\nmod tests {\n    fn t(q: &Queue) {\n        q.parallel_for(\"k\", \"t\", 1, 1, |_, _| { let v = Vec::new(); drop(v); });\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
