//! **alloc-in-kernel** — no heap allocation inside kernel closures.
//!
//! A GPU kernel cannot call the host allocator; in SYCL/CUDA the
//! candidate-set, GMCR and join kernels work entirely in pre-allocated
//! device buffers and registers. The CPU reproduction keeps the same
//! discipline so the counter model stays proportional to the traffic a
//! device kernel would actually generate — a `Vec::push` inside a
//! `parallel_for` body is host-only convenience that the real kernel
//! could not express, and its cost would be invisible to the model.
//!
//! Detected: allocation constructors/adaptors (`Vec::new`, `vec![]`,
//! `.collect()`, `.push(..)`, `format!`, …) inside the closure argument of
//! a `.parallel_for(..)` / `.parallel_for_work_group(..)` launch (or their
//! stop-aware `_until` variants), outside
//! `#[cfg(test)]`. `join_bfs.rs` carries a documented pragma: its BFS
//! frontier materialization is the memory blow-up §4.6 measures in order
//! to reject the BFS strategy.

use super::{
    file_name, find_all, in_ranges, Diagnostic, Rule, KERNEL_LAUNCHES, KERNEL_MODULE_FILES,
};
use crate::lexer::{self, SourceFile};

/// See the module docs.
pub struct AllocInKernel;

const ALLOC_TOKENS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec!",
    "Box::new(",
    "String::new(",
    "String::from(",
    "format!",
    ".to_string(",
    ".to_vec(",
    ".to_owned(",
    ".collect(",
    ".push(",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
    "VecDeque::new(",
];

impl Rule for AllocInKernel {
    fn name(&self) -> &'static str {
        "alloc-in-kernel"
    }

    fn description(&self) -> &'static str {
        "heap allocation inside a parallel_for / parallel_for_work_group kernel closure"
    }

    fn applies(&self, path: &str) -> bool {
        KERNEL_MODULE_FILES.contains(&file_name(path))
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tests = file.test_ranges();
        let code = &file.code;
        for launch in KERNEL_LAUNCHES {
            for at in find_all(file, 0..code.len(), launch) {
                if in_ranges(&tests, at) {
                    continue;
                }
                let args_open = at + launch.len() - 1;
                let Some(args_close) = lexer::matching_paren(code, args_open) else {
                    continue;
                };
                let Some(body) = closure_body(code, args_open + 1, args_close) else {
                    continue;
                };
                for tok in ALLOC_TOKENS {
                    for hit in find_all(file, body.clone(), tok) {
                        let (line, column) = file.line_col(hit + 1);
                        out.push(Diagnostic {
                            rule: "alloc-in-kernel",
                            file: file.path.clone(),
                            line,
                            column,
                            message: format!(
                                "heap allocation `{}` inside a kernel closure: device kernels \
                                 cannot call the allocator — pre-allocate outside the launch or \
                                 use fixed-size scratch (LocalMem)",
                                tok.trim_start_matches('.').trim_end_matches('('),
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// The byte range of the kernel-closure body inside a launch's argument
/// list `(open..close)`: from the closure's closing `|` through either its
/// brace block or the end of the argument list.
fn closure_body(code: &str, open: usize, close: usize) -> Option<std::ops::Range<usize>> {
    let bytes = code.as_bytes();
    let first = (open..close).find(|&i| bytes[i] == b'|')?;
    // `||` (no parameters) or `|params|`.
    let params_end = if bytes.get(first + 1) == Some(&b'|') {
        first + 1
    } else {
        (first + 1..close).find(|&i| bytes[i] == b'|')?
    };
    let mut i = params_end + 1;
    while i < close && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if i < close && bytes[i] == b'{' {
        let end = lexer::matching_brace(code, i)?;
        Some(i + 1..end)
    } else {
        Some(i..close)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = lex("crates/sigmo-core/src/filter.rs", src);
        let mut out = Vec::new();
        AllocInKernel.check(&f, &mut out);
        out
    }

    #[test]
    fn vec_new_in_kernel_closure_is_flagged() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {\n        let mut tmp = Vec::new();\n        tmp.push(i);\n    });\n}\n",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("Vec::new"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn collect_in_work_group_closure_is_flagged() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for_work_group(\"k\", \"join\", g, 4, 8, |ctx| {\n        let xs: Vec<u32> = (0..4).collect();\n        drop(xs);\n    });\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("collect"));
    }

    #[test]
    fn allocation_outside_the_closure_is_fine() {
        let d = run(
            "fn launch(q: &Queue) {\n    let scratch = vec![0u64; 64];\n    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {\n        c.add_instructions(scratch[i % 64]);\n    });\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_allocating_kernel_is_clean() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {\n        c.add_word_reads(1, 8);\n    });\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_modules_are_skipped() {
        let d = run(
            "#[cfg(test)]\nmod tests {\n    fn t(q: &Queue) {\n        q.parallel_for(\"k\", \"t\", 1, 1, |_, _| { let v = Vec::new(); drop(v); });\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn only_kernel_module_files_apply() {
        assert!(AllocInKernel.applies("crates/sigmo-core/src/join_bfs.rs"));
        assert!(!AllocInKernel.applies("crates/sigmo-core/src/engine.rs"));
    }
}
