//! **relaxed-read-in-report** — relaxed atomic loads must not flow into
//! reported totals unexamined.
//!
//! `Ordering::Relaxed` is the kernel discipline for *writes* (counter
//! RMWs are commutative, so their order never matters), but a relaxed
//! *read* taken while writers may still be running can observe a torn-in
//! snapshot of the totals: correct only if the reader provably runs after
//! the parallel section has quiesced. Every relaxed load in
//! report-reachable code is therefore surfaced, and keeping one requires
//! a written justification naming the synchronization that orders it
//! after the writers — conventionally "read after the parallel section
//! joined" (rayon's scoped joins are exactly such a point).
//!
//! This complements `atomic-ordering`: that rule keeps orderings relaxed
//! and visible; this one makes the *read-for-report* sites auditable.

use super::{find_all, Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;

/// See the module docs.
pub struct RelaxedReadInReport;

const RELAXED_LOAD: &str = ".load(Ordering::Relaxed)";

impl Rule for RelaxedReadInReport {
    fn name(&self) -> &'static str {
        "relaxed-read-in-report"
    }

    fn description(&self) -> &'static str {
        "relaxed atomic load in report-reachable code: justify what orders it after the writers"
    }

    fn requires_justification(&self) -> bool {
        true
    }

    fn check(&self, file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        for range in &ctx.report {
            for at in find_all(&file.file, range.clone(), RELAXED_LOAD) {
                let (line, column) = file.file.line_col(at + 1);
                out.push(Diagnostic {
                    rule: "relaxed-read-in-report",
                    file: file.file.path.clone(),
                    line,
                    column,
                    message: "relaxed atomic load flows into a reported total: a read racing \
                              its writers can observe a partial snapshot — take it after the \
                              parallel section joins and say so in the pragma justification"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&RelaxedReadInReport, "crates/sigmo-device/src/q.rs", src)
    }

    #[test]
    fn relaxed_load_in_report_builder_is_flagged() {
        let d = run(
            "fn finish(skipped: &AtomicUsize) -> KernelRecord {\n    let n = skipped.load(Ordering::Relaxed);\n    KernelRecord { skipped_groups: n }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn relaxed_load_in_reachable_helper_is_flagged() {
        let d = run(
            "fn finish(c: &Counters) -> RunReport {\n    RunReport { total: total_of(c) }\n}\nfn total_of(c: &Counters) -> u64 {\n    c.total.load(Ordering::Relaxed)\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn relaxed_load_outside_report_paths_is_fine() {
        let d = run("fn probe(stop: &AtomicBool) -> bool {\n    stop.load(Ordering::Relaxed)\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_load_relaxed_ops_are_not_this_rules_business() {
        let d = run(
            "fn finish(c: &AtomicU64) -> RunReport {\n    c.fetch_add(1, Ordering::Relaxed);\n    RunReport { total: 0 }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
