//! **per-bit-probe** — bans per-bit candidate probing in the word-parallel
//! hot paths.
//!
//! PR 1 made candidate scanning word-granular (`iter_set_in_range`,
//! `next_set_in_range`, `row_any_in_range_counted`): one 64-bit load per
//! word instead of one probe per column, the difference GSI/GSM show
//! between a usable and an unusable GPU matcher. This rule keeps future
//! code from quietly reintroducing column-at-a-time probing in the hot
//! files. Two shapes are detected, outside `#[cfg(test)]`:
//!
//! 1. a `for` loop over a *range* whose body probes `.get(..)` /
//!    `.test_bit(..)` with the loop variable as an argument — the classic
//!    per-column scan;
//! 2. a single-statement iterator chain over a range whose predicate
//!    closure probes (`(lo..hi).filter(|&c| bitmap.get(row, c))` and
//!    friends).
//!
//! Adjacency-driven probes (`for &d in data.neighbors(x)`) are *not*
//! flagged: probing one bit per neighbor is exactly the join's design.
//! The per-bit oracle in `naive.rs` carries documented pragmas — it exists
//! to differentially test the word-parallel paths.

use super::{file_name, find_all, header_body_open, in_ranges, Diagnostic, Rule, HOT_PATH_FILES};
use crate::lexer::{self, SourceFile};

/// See the module docs.
pub struct PerBitProbe;

const PROBES: &[&str] = &[".get(", ".test_bit("];
const CHAIN_ADAPTORS: &[&str] = &[
    ".filter(",
    ".find(",
    ".filter_map(",
    ".take_while(",
    ".skip_while(",
    ".position(",
    ".any(",
    ".all(",
];

impl Rule for PerBitProbe {
    fn name(&self) -> &'static str {
        "per-bit-probe"
    }

    fn description(&self) -> &'static str {
        "per-column bitmap probing in word-parallel hot paths (use iter_set_in_range / next_set_in_range)"
    }

    fn applies(&self, path: &str) -> bool {
        HOT_PATH_FILES.contains(&file_name(path))
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tests = file.test_ranges();
        check_range_loops(file, &tests, out);
        check_chains(file, &tests, out);
    }
}

/// Shape 1: `for <pat> in <range-expr> { ... .get(.., <var>, ..) ... }`.
fn check_range_loops(
    file: &SourceFile,
    tests: &[std::ops::Range<usize>],
    out: &mut Vec<Diagnostic>,
) {
    let code = &file.code;
    let mut from = 0;
    while let Some(at) = lexer::find_word(code, from, "for") {
        from = at + 3;
        if in_ranges(tests, at) {
            continue;
        }
        let Some(in_kw) = lexer::find_word(code, at + 3, "in") else {
            continue;
        };
        let pattern = &code[at + 3..in_kw];
        if pattern.contains('{') {
            continue; // not a loop header (e.g. `for` inside a generic bound)
        }
        let loop_vars: Vec<&str> = lexer::idents(pattern)
            .into_iter()
            .filter(|w| !matches!(*w, "mut" | "ref" | "_"))
            .collect();
        if loop_vars.is_empty() {
            continue;
        }
        // Iterator expression: up to the `{` that opens the body, with
        // `[...]` index spans stripped so a slice like `&xs[1..]` does not
        // read as a range iteration.
        let Some(body_open) = header_body_open(code, in_kw + 2) else {
            continue;
        };
        let iter_expr = strip_index_spans(&code[in_kw + 2..body_open]);
        if !iter_expr.contains("..") {
            continue;
        }
        let Some(body_close) = lexer::matching_brace(code, body_open) else {
            continue;
        };
        for pat in PROBES {
            for call in find_all(file, body_open..body_close, pat) {
                let args_open = call + pat.len() - 1;
                let Some(args_close) = lexer::matching_paren(code, args_open) else {
                    continue;
                };
                let args = &code[args_open + 1..args_close];
                if lexer::idents(args).iter().any(|a| loop_vars.contains(a)) {
                    let (line, column) = file.line_col(call + 1);
                    out.push(Diagnostic {
                        rule: "per-bit-probe",
                        file: file.path.clone(),
                        line,
                        column,
                        message: format!(
                            "per-bit probe `{}` over range loop variable `{}`: hot paths must scan \
                             words (iter_set_in_range / next_set_in_range), not columns",
                            pat.trim_start_matches('.').trim_end_matches('('),
                            lexer::idents(args)
                                .iter()
                                .find(|a| loop_vars.contains(*a))
                                .unwrap(),
                        ),
                    });
                }
            }
        }
    }
}

/// Shape 2: a range and a probing predicate chained on one line.
fn check_chains(file: &SourceFile, tests: &[std::ops::Range<usize>], out: &mut Vec<Diagnostic>) {
    for (n, line) in file.lines.iter().enumerate() {
        let offset = file.line_starts[n];
        if in_ranges(tests, offset) {
            continue;
        }
        let code = &line.code;
        if !code.contains("..") || !CHAIN_ADAPTORS.iter().any(|a| code.contains(a)) {
            continue;
        }
        for pat in PROBES {
            if let Some(col) = code.find(pat) {
                out.push(Diagnostic {
                    rule: "per-bit-probe",
                    file: file.path.clone(),
                    line: n + 1,
                    column: col + 2,
                    message: format!(
                        "per-bit probe `{}` inside an iterator chain over a range: enumerate set \
                         bits word-parallel instead",
                        pat.trim_start_matches('.').trim_end_matches('('),
                    ),
                });
            }
        }
    }
}

/// Removes `[...]` spans (index expressions) from a snippet.
fn strip_index_spans(expr: &str) -> String {
    let mut out = String::with_capacity(expr.len());
    let mut depth = 0usize;
    for c in expr.chars() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = lex("crates/sigmo-core/src/candidates.rs", src);
        let mut out = Vec::new();
        PerBitProbe.check(&f, &mut out);
        out
    }

    #[test]
    fn flags_for_loop_probe_over_range() {
        let diags = run("fn f() {\n    for col in lo..hi {\n        if bitmap.get(row, col) { n += 1; }\n    }\n}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[0].rule, "per-bit-probe");
    }

    #[test]
    fn flags_chained_range_probe() {
        let diags = run("fn f() {\n    (lo..hi).find(|&c| bitmap.get(row, c))\n}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn adjacency_probes_are_fine() {
        let diags = run(
            "fn f() {\n    for &d in data.neighbors(x) {\n        if bitmap.get(q, d as usize) { y(); }\n    }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn slice_tail_index_is_not_a_range_iteration() {
        let diags = run(
            "fn f() {\n    for &q in &members[first + 1..] {\n        if bitmap.get(q as usize, d) { y(); }\n    }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn probe_not_using_loop_var_is_fine() {
        let diags = run(
            "fn f() {\n    for i in 0..n {\n        if bitmap.get(fixed_row, fixed_col) { y(); }\n    }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_modules_are_skipped() {
        let diags = run(
            "#[cfg(test)]\nmod tests {\n    fn t() {\n        for c in 0..n { assert!(b.get(r, c)); }\n    }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn only_hot_path_files_apply() {
        assert!(PerBitProbe.applies("crates/sigmo-core/src/filter.rs"));
        assert!(PerBitProbe.applies("crates/sigmo-core/src/naive.rs"));
        assert!(!PerBitProbe.applies("crates/sigmo-core/src/engine.rs"));
        assert!(!PerBitProbe.applies("crates/sigmo-device/src/queue.rs"));
    }
}
