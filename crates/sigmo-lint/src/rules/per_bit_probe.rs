//! **per-bit-probe** — bans per-bit candidate probing in kernel-reachable
//! code.
//!
//! PR 1 made candidate scanning word-granular (`iter_set_in_range`,
//! `next_set_in_range`, `row_any_in_range_counted`): one 64-bit load per
//! word instead of one probe per column, the difference GSI/GSM show
//! between a usable and an unusable GPU matcher. This rule keeps future
//! code from quietly reintroducing column-at-a-time probing anywhere a
//! kernel can reach — the gate is the call graph (launch closures plus the
//! functions they transitively call), not a file-name list, so a helper
//! factored out into a new module stays covered. Two shapes are detected:
//!
//! 1. a `for` loop over a *range* whose body probes `.get(..)` /
//!    `.test_bit(..)` with the loop variable as an argument — the classic
//!    per-column scan;
//! 2. a single-statement iterator chain over a range whose predicate
//!    closure probes (`(lo..hi).filter(|&c| bitmap.get(row, c))` and
//!    friends).
//!
//! Adjacency-driven probes (`for &d in data.neighbors(x)`) are *not*
//! flagged: probing one bit per neighbor is exactly the join's design.
//! The per-bit oracle in `naive.rs` is host-only differential-test
//! machinery — no kernel reaches it, so it needs no pragmas anymore.

use super::{find_all, header_body_open, Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;
use crate::lexer;

/// See the module docs.
pub struct PerBitProbe;

const PROBES: &[&str] = &[".get(", ".test_bit("];
const CHAIN_ADAPTORS: &[&str] = &[
    ".filter(",
    ".find(",
    ".filter_map(",
    ".take_while(",
    ".skip_while(",
    ".position(",
    ".any(",
    ".all(",
];

impl Rule for PerBitProbe {
    fn name(&self) -> &'static str {
        "per-bit-probe"
    }

    fn description(&self) -> &'static str {
        "per-column bitmap probing in kernel-reachable code (use iter_set_in_range / next_set_in_range)"
    }

    fn check(&self, file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        if ctx.kernel.is_empty() {
            return;
        }
        check_range_loops(file, ctx, out);
        check_chains(file, ctx, out);
    }
}

/// Shape 1: `for <pat> in <range-expr> { ... .get(.., <var>, ..) ... }`,
/// with the `for` keyword in kernel context.
fn check_range_loops(file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
    let code = &file.file.code;
    let mut from = 0;
    while let Some(at) = lexer::find_word(code, from, "for") {
        from = at + 3;
        if !ctx.in_kernel(at) {
            continue;
        }
        let Some(in_kw) = lexer::find_word(code, at + 3, "in") else {
            continue;
        };
        let pattern = &code[at + 3..in_kw];
        if pattern.contains('{') {
            continue; // not a loop header (e.g. `for` inside a generic bound)
        }
        let loop_vars: Vec<&str> = lexer::idents(pattern)
            .into_iter()
            .filter(|w| !matches!(*w, "mut" | "ref" | "_"))
            .collect();
        if loop_vars.is_empty() {
            continue;
        }
        // Iterator expression: up to the `{` that opens the body, with
        // `[...]` index spans stripped so a slice like `&xs[1..]` does not
        // read as a range iteration.
        let Some(body_open) = header_body_open(code, in_kw + 2) else {
            continue;
        };
        let iter_expr = strip_index_spans(&code[in_kw + 2..body_open]);
        if !iter_expr.contains("..") {
            continue;
        }
        let Some(body_close) = lexer::matching_brace(code, body_open) else {
            continue;
        };
        for pat in PROBES {
            for call in find_all(&file.file, body_open..body_close, pat) {
                let args_open = call + pat.len() - 1;
                let Some(args_close) = lexer::matching_paren(code, args_open) else {
                    continue;
                };
                let args = &code[args_open + 1..args_close];
                if lexer::idents(args).iter().any(|a| loop_vars.contains(a)) {
                    let (line, column) = file.file.line_col(call + 1);
                    out.push(Diagnostic {
                        rule: "per-bit-probe",
                        file: file.file.path.clone(),
                        line,
                        column,
                        message: format!(
                            "per-bit probe `{}` over range loop variable `{}` in kernel-reachable \
                             code: scan words (iter_set_in_range / next_set_in_range), not columns",
                            pat.trim_start_matches('.').trim_end_matches('('),
                            lexer::idents(args)
                                .iter()
                                .find(|a| loop_vars.contains(*a))
                                .unwrap(),
                        ),
                    });
                }
            }
        }
    }
}

/// Shape 2: a range and a probing predicate chained on one line in kernel
/// context.
fn check_chains(file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
    for (n, line) in file.file.lines.iter().enumerate() {
        let offset = file.file.line_starts[n];
        let code = &line.code;
        if !code.contains("..") || !CHAIN_ADAPTORS.iter().any(|a| code.contains(a)) {
            continue;
        }
        for pat in PROBES {
            if let Some(col) = code.find(pat) {
                if !ctx.in_kernel(offset + col) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: "per-bit-probe",
                    file: file.file.path.clone(),
                    line: n + 1,
                    column: col + 2,
                    message: format!(
                        "per-bit probe `{}` inside an iterator chain over a range: enumerate set \
                         bits word-parallel instead",
                        pat.trim_start_matches('.').trim_end_matches('('),
                    ),
                });
            }
        }
    }
}

/// Removes `[...]` spans (index expressions) from a snippet.
fn strip_index_spans(expr: &str) -> String {
    let mut out = String::with_capacity(expr.len());
    let mut depth = 0usize;
    for c in expr.chars() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&PerBitProbe, "crates/sigmo-core/src/candidates.rs", src)
    }

    /// Wraps a fn body in a kernel launch that calls it, so the body is
    /// kernel-reachable.
    fn kernelized(body_fn: &str) -> String {
        format!(
            "fn host(q: &Queue) {{\n    q.parallel_for(\"k\", \"scan\", n, 128, |i, c| {{ f(i, c); }});\n}}\n{body_fn}"
        )
    }

    #[test]
    fn flags_for_loop_probe_in_reachable_fn() {
        let diags = run(&kernelized(
            "fn f(i: usize, c: &K) {\n    for col in lo..hi {\n        if bitmap.get(row, col) { c.add_instructions(1); }\n    }\n}\n",
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "per-bit-probe");
    }

    #[test]
    fn flags_probe_directly_inside_launch_closure() {
        let diags = run(
            "fn host(q: &Queue) {\n    q.parallel_for(\"k\", \"scan\", n, 128, |i, c| {\n        for col in lo..hi {\n            if bitmap.get(i, col) { c.add_instructions(1); }\n        }\n    });\n}\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn flags_chained_range_probe_in_reachable_fn() {
        let diags = run(&kernelized(
            "fn f(i: usize, c: &K) {\n    (lo..hi).find(|&c| bitmap.get(row, c));\n}\n",
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn unreachable_probe_is_not_flagged() {
        // No kernel launch anywhere: host-only oracle code may probe bits.
        let diags = run(
            "fn oracle() {\n    for col in lo..hi {\n        if bitmap.get(row, col) { n += 1; }\n    }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn host_side_probe_next_to_kernel_is_not_flagged() {
        // A launch exists, but the probing fn is never called from it.
        let diags = run(
            "fn host(q: &Queue) {\n    q.parallel_for(\"k\", \"scan\", n, 128, |i, c| { c.add_instructions(1); });\n}\nfn oracle() {\n    for col in lo..hi {\n        if bitmap.get(row, col) { n += 1; }\n    }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn adjacency_probes_are_fine() {
        let diags = run(&kernelized(
            "fn f(x: usize, c: &K) {\n    for &d in data.neighbors(x) {\n        if bitmap.get(q, d as usize) { c.add_instructions(1); }\n    }\n}\n",
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn slice_tail_index_is_not_a_range_iteration() {
        let diags = run(&kernelized(
            "fn f(first: usize, c: &K) {\n    for &q in &members[first + 1..] {\n        if bitmap.get(q as usize, d) { c.add_instructions(1); }\n    }\n}\n",
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn probe_not_using_loop_var_is_fine() {
        let diags = run(&kernelized(
            "fn f(i: usize, c: &K) {\n    for i in 0..n {\n        if bitmap.get(fixed_row, fixed_col) { c.add_instructions(1); }\n    }\n}\n",
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_module_launches_carry_no_context() {
        let diags = run(
            "#[cfg(test)]\nmod tests {\n    fn t(q: &Queue) {\n        q.parallel_for(\"k\", \"t\", 1, 1, |_, _| { f(); });\n    }\n}\nfn f() {\n    for c in 0..n { if b.get(r, c) { x(); } }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
