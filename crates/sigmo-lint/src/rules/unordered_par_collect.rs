//! **unordered-par-collect** — parallel iteration must merge
//! deterministically.
//!
//! Rayon's indexed combinators (`collect` into a `Vec`, indexed `map`)
//! preserve input order, but two idioms do not and are exactly how
//! scheduling order leaks into results:
//!
//! * `par_bridge()` — explicitly documented as *not* preserving order;
//!   whatever consumes it sees a scheduling-dependent sequence;
//! * `.for_each(...)` on a parallel iterator whose closure merges into
//!   shared state (`push`, `insert`, `extend`, a `lock()`ed collection) —
//!   the merge happens in completion order.
//!
//! The fix is the repo's standard pattern (see `stream.rs`, `queue.rs`):
//! give every parallel item an *index*, write results into pre-sized
//! slots or per-chunk buffers, and concatenate in index order on the
//! host. This rule runs on all product code (tests/benches excepted) —
//! a nondeterministic merge is a latent bug even before a report path
//! grows around it. Suppression requires a written justification (e.g.
//! "results sorted before use").

use super::{find_all, in_ranges, Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;
use crate::lexer;

/// See the module docs.
pub struct UnorderedParCollect;

/// Parallel-iterator entry points whose downstream chain we inspect.
const PAR_ADAPTORS: &[&str] = &[
    ".par_iter(",
    ".par_iter_mut(",
    ".into_par_iter(",
    ".par_chunks(",
    ".par_chunks_mut(",
];

/// Order-sensitive merge operations inside a `for_each` closure.
const MERGE_OPS: &[&str] = &[".push(", ".push_back(", ".insert(", ".extend(", ".lock("];

impl Rule for UnorderedParCollect {
    fn name(&self) -> &'static str {
        "unordered-par-collect"
    }

    fn description(&self) -> &'static str {
        "parallel iteration merging in completion order (par_bridge / for_each into shared state)"
    }

    fn requires_justification(&self) -> bool {
        true
    }

    fn check(&self, file: &FileIndex, _ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        if file.context_exempt {
            return;
        }
        let code = &file.file.code;
        // par_bridge never preserves order: always worth a justification.
        for at in find_all(&file.file, 0..code.len(), ".par_bridge(") {
            if in_ranges(&file.tests, at) {
                continue;
            }
            let (line, column) = file.file.line_col(at + 1);
            out.push(Diagnostic {
                rule: "unordered-par-collect",
                file: file.file.path.clone(),
                line,
                column,
                message: "`par_bridge()` yields items in scheduling order: anything consuming \
                          this sequence is nondeterministic — use an indexed parallel iterator \
                          or sort the results, and justify if the order provably washes out"
                    .into(),
            });
        }
        // for_each merging into shared state, downstream of a par adaptor.
        for adaptor in PAR_ADAPTORS {
            for at in find_all(&file.file, 0..code.len(), adaptor) {
                if in_ranges(&file.tests, at) {
                    continue;
                }
                let stmt_end = statement_end(code, at);
                for fe in find_all(&file.file, at..stmt_end, ".for_each(") {
                    let open = fe + ".for_each(".len() - 1;
                    let Some(close) = lexer::matching_paren(code, open) else {
                        continue;
                    };
                    if MERGE_OPS
                        .iter()
                        .any(|op| !find_all(&file.file, open + 1..close, op).is_empty())
                    {
                        let (line, column) = file.file.line_col(fe + 1);
                        out.push(Diagnostic {
                            rule: "unordered-par-collect",
                            file: file.file.path.clone(),
                            line,
                            column,
                            message: "parallel `for_each` merges into shared state in completion \
                                      order: write into pre-indexed slots (or per-chunk buffers \
                                      concatenated in index order) so thread count cannot reorder \
                                      the merge"
                                .into(),
                        });
                    }
                }
            }
        }
    }
}

/// End of the statement containing offset `at`: the next `;` at bracket
/// depth 0 relative to `at`, or end of file.
fn statement_end(code: &str, at: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut i = at;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            b';' if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&UnorderedParCollect, "crates/sigmo-core/src/sweep.rs", src)
    }

    #[test]
    fn par_bridge_is_flagged() {
        let d = run("fn f(xs: &[u32]) {\n    xs.iter().par_bridge().for_each(|x| sink(x));\n}\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("par_bridge"));
    }

    #[test]
    fn for_each_pushing_into_mutex_is_flagged() {
        let d = run(
            "fn f(xs: &[u32], out: &Mutex<Vec<u32>>) {\n    xs.par_iter().for_each(|x| {\n        out.lock().push(x * 2);\n    });\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("completion"));
    }

    #[test]
    fn indexed_collect_is_fine() {
        let d =
            run("fn f(xs: &[u32]) -> Vec<u32> {\n    xs.par_iter().map(|x| x * 2).collect()\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn for_each_without_shared_merge_is_fine() {
        let d = run(
            "fn f(n: usize, counters: &K) {\n    (0..n).into_par_iter().for_each(|i| {\n        counters.add_instructions(work(i));\n    });\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn sequential_for_each_push_is_fine() {
        let d = run(
            "fn f(xs: &[u32], out: &mut Vec<u32>) {\n    xs.iter().for_each(|x| out.push(x * 2));\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tests_and_benches_are_exempt() {
        let d = run(
            "#[cfg(test)]\nmod tests {\n    fn t(xs: &[u32], out: &Mutex<Vec<u32>>) {\n        xs.par_iter().for_each(|x| out.lock().push(*x));\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
        let bench = run_rule(
            &UnorderedParCollect,
            "crates/sigmo-bench/src/sweep.rs",
            "fn f(xs: &[u32], out: &Mutex<Vec<u32>>) {\n    xs.par_iter().for_each(|x| out.lock().push(*x));\n}\n",
        );
        assert!(bench.is_empty(), "{bench:?}");
    }
}
