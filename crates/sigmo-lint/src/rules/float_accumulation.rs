//! **float-accumulation** — no floating-point accumulation on the result
//! surface.
//!
//! Float addition is not associative: a parallel (or merely reordered)
//! reduction of the same values can produce different bits, and the
//! repo's invariant is *bit-identical* results across thread counts. The
//! counter model therefore accumulates integers (word counts, byte
//! counts, picosecond-priced costs as u64/u128) and converts to floats
//! only at the display edge. This rule keeps float `+=`, float `sum()`
//! and float `fold`s out of kernel- and report-reachable code.
//!
//! Detected, on the result surface:
//!
//! * `x += ...` where `x` is float-bound (`x: f64`, `x = 0.0`) or the
//!   added expression contains a float literal;
//! * `.sum::<f32>()` / `.sum::<f64>()` (and `product`);
//! * `.fold(0.0, ...)`-style folds seeded with a float literal —
//!   except min/max reductions (`fold(0.0, f64::max)`), which are
//!   commutative and associative over non-NaN floats and so immune to
//!   the reordering hazard.
//!
//! Suppressing this rule requires a written justification — the accepted
//! ones are "sequential by construction" (a single-threaded merge in a
//! fixed order) and "display-only" (wall-time style values excluded from
//! determinism keys).

use super::{bound_names, find_all, has_float_literal, Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;
use crate::lexer;
use std::ops::Range;

/// See the module docs.
pub struct FloatAccumulation;

const FLOAT_SUMS: &[&str] = &[
    ".sum::<f32>(",
    ".sum::<f64>(",
    ".product::<f32>(",
    ".product::<f64>(",
];

impl Rule for FloatAccumulation {
    fn name(&self) -> &'static str {
        "float-accumulation"
    }

    fn description(&self) -> &'static str {
        "floating-point accumulation on the result surface: reduction order changes the bits"
    }

    fn requires_justification(&self) -> bool {
        true
    }

    fn check(&self, file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        if ctx.kernel.is_empty() && ctx.report.is_empty() {
            return;
        }
        let float_names = bound_names(&file.file.code, &["f32", "f64"]);
        let mut ranges: Vec<Range<usize>> = ctx.kernel.clone();
        ranges.extend(ctx.report.iter().cloned());
        for range in &ranges {
            check_plus_assign(file, range.clone(), &float_names, out);
            check_sums(file, range.clone(), out);
            check_folds(file, range.clone(), out);
        }
    }
}

fn check_plus_assign(
    file: &FileIndex,
    range: Range<usize>,
    float_names: &std::collections::BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let code = &file.file.code;
    let bytes = code.as_bytes();
    for at in find_all(&file.file, range.clone(), "+=") {
        // LHS identifier (skipping whitespace back from `+=`).
        let mut i = at;
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        let lhs = super::receiver_segment(code, i);
        // RHS: up to the statement end.
        let rhs_end = code[at..range.end.min(code.len())]
            .find(';')
            .map(|p| at + p)
            .unwrap_or(range.end);
        let floaty = float_names.contains(lhs) || has_float_literal(&code[at + 2..rhs_end]);
        if floaty {
            let (line, column) = file.file.line_col(at + 1);
            out.push(diag(file, line, column, &format!("float `+=` on `{lhs}`")));
        }
    }
}

fn check_sums(file: &FileIndex, range: Range<usize>, out: &mut Vec<Diagnostic>) {
    for pat in FLOAT_SUMS {
        for at in find_all(&file.file, range.clone(), pat) {
            let (line, column) = file.file.line_col(at + 1);
            out.push(diag(
                file,
                line,
                column,
                &format!("`{}`", pat.trim_start_matches('.').trim_end_matches('(')),
            ));
        }
    }
}

fn check_folds(file: &FileIndex, range: Range<usize>, out: &mut Vec<Diagnostic>) {
    let code = &file.file.code;
    let bytes = code.as_bytes();
    for at in find_all(&file.file, range.clone(), ".fold(") {
        // Seed expression: up to the first top-level `,` in the arg list.
        let open = at + ".fold(".len() - 1;
        let Some(close) = lexer::matching_paren(code, open) else {
            continue;
        };
        let mut depth = 0i32;
        let mut seed_end = close;
        for j in open + 1..close {
            match bytes[j] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b',' if depth == 0 => {
                    seed_end = j;
                    break;
                }
                _ => {}
            }
        }
        // `fold(0.0, f64::max)`-style reductions are order-insensitive
        // (min/max are commutative and associative over non-NaN floats),
        // so the nonassociativity hazard this rule exists for is absent.
        let op = &code[seed_end..close];
        if op.contains("f64::max")
            || op.contains("f64::min")
            || op.contains("f32::max")
            || op.contains("f32::min")
        {
            continue;
        }
        if has_float_literal(&code[open + 1..seed_end]) {
            let (line, column) = file.file.line_col(at + 1);
            out.push(diag(file, line, column, "float-seeded `fold`"));
        }
    }
}

fn diag(file: &FileIndex, line: usize, column: usize, what: &str) -> Diagnostic {
    Diagnostic {
        rule: "float-accumulation",
        file: file.file.path.clone(),
        line,
        column,
        message: format!(
            "{what} on the result surface: float reduction order changes the bits — accumulate \
             integers (fixed-point) and convert at the display edge, or justify why the order \
             is fixed",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&FloatAccumulation, "crates/sigmo-core/src/cost.rs", src)
    }

    #[test]
    fn float_plus_assign_in_report_fn_is_flagged() {
        let d = run(
            "fn merge(parts: &[Part]) -> RunReport {\n    let mut total: f64 = 0.0;\n    for p in parts {\n        total += p.cost;\n    }\n    RunReport { total }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("total"));
    }

    #[test]
    fn integer_plus_assign_is_fine() {
        let d = run(
            "fn merge(parts: &[Part]) -> RunReport {\n    let mut total: u64 = 0;\n    for p in parts {\n        total += p.count;\n    }\n    RunReport { total }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn float_literal_rhs_is_flagged_without_binding_info() {
        let d = run(
            "fn merge(xs: &[f64]) -> StreamReport {\n    let mut acc = zero();\n    acc += 0.5;\n    StreamReport { acc }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn float_sum_turbofish_is_flagged() {
        let d = run(
            "fn merge(xs: &[f64]) -> RunReport {\n    let t = xs.iter().sum::<f64>();\n    RunReport { t }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("sum::<f64>"));
    }

    #[test]
    fn float_seeded_fold_is_flagged() {
        let d = run(
            "fn merge(xs: &[f64]) -> RunReport {\n    let t = xs.iter().fold(0.0, |a, b| a + b);\n    RunReport { t }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn min_max_folds_are_order_insensitive_and_fine() {
        let d = run(
            "fn merge(xs: &[f64]) -> RunReport {\n    let t = xs.iter().cloned().fold(0.0, f64::max);\n    RunReport { t }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn integer_fold_is_fine() {
        let d = run(
            "fn merge(xs: &[u64]) -> RunReport {\n    let t = xs.iter().fold(0u64, |a, b| a + b);\n    RunReport { t }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn float_math_off_the_result_surface_is_fine() {
        let d = run(
            "fn describe(xs: &[f64]) -> f64 {\n    let mut m = 0.0;\n    for x in xs {\n        m += x;\n    }\n    m\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kernel_reachable_float_accumulation_is_flagged() {
        let d = run(
            "fn host(q: &Queue) {\n    q.parallel_for(\"k\", \"score\", n, 64, |i, c| { score(i, c); });\n}\nfn score(i: usize, c: &K) {\n    let mut s: f32 = 0.0;\n    s += weight(i);\n    c.add_instructions(s as u64);\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
