//! **nondet-collection-iter** — no hash-order iteration on the result
//! surface.
//!
//! `HashMap`/`HashSet` iteration order depends on the hasher seed and
//! insertion history; anything it feeds — a merged report, a candidate
//! list, a retry schedule — varies run to run and thread-count to
//! thread-count, which is exactly the class of bug GSI/GSM pick up in
//! their joint/merge phases and exactly what this repo's bit-identical
//! invariant forbids. The repo's own convention (see `summary.rs`,
//! `server.rs`) is: hash containers for *keyed access*, `BTreeMap`/
//! `BTreeSet` or an explicit order `Vec` for anything iterated.
//!
//! Detected, on the result surface (kernel- or report-reachable code):
//! iteration over a binding whose declaration ties it to a hash container
//! (`name: HashMap<...>` field/param/let, or `name = HashMap::new()`),
//! via `.iter()` / `.keys()` / `.values()` / `.drain(..)` / `.retain(..)`
//! and friends, or a `for` loop whose iterated expression is such a
//! binding. Keyed access (`get`, `insert`, `remove`, `contains_key`) is
//! not flagged — that is what hash containers are for.
//!
//! Suppressing this rule requires a written justification (e.g. "feeds a
//! sort before use").

use super::{bound_names, find_all, receiver_segment, Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;
use crate::lexer;
use std::collections::BTreeSet;
use std::ops::Range;

/// See the module docs.
pub struct NondetCollectionIter;

/// Hash-ordered container type names.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Order-exposing methods (iteration, draining, order-dependent
/// retention).
const ITER_METHODS: &[&str] = &[
    ".iter(",
    ".iter_mut(",
    ".into_iter(",
    ".keys(",
    ".into_keys(",
    ".values(",
    ".values_mut(",
    ".into_values(",
    ".drain(",
    ".retain(",
];

impl Rule for NondetCollectionIter {
    fn name(&self) -> &'static str {
        "nondet-collection-iter"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet iteration on the result surface: hash order leaks into reported output"
    }

    fn requires_justification(&self) -> bool {
        true
    }

    fn check(&self, file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        if ctx.kernel.is_empty() && ctx.report.is_empty() {
            return;
        }
        // Bindings are collected file-wide: a struct field declared at the
        // top of the file is iterated through `self.`/`plan.` receivers in
        // fns far below.
        let hash_names = bound_names(&file.file.code, HASH_TYPES);
        if hash_names.is_empty() {
            return;
        }
        let mut ranges: Vec<Range<usize>> = ctx.kernel.clone();
        ranges.extend(ctx.report.iter().cloned());
        for range in &ranges {
            check_method_iters(file, range.clone(), &hash_names, out);
            check_for_loops(file, range.clone(), &hash_names, out);
        }
    }
}

fn check_method_iters(
    file: &FileIndex,
    range: Range<usize>,
    hash_names: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let code = &file.file.code;
    for method in ITER_METHODS {
        for at in find_all(&file.file, range.clone(), method) {
            let recv = receiver_segment(code, at);
            if hash_names.contains(recv) {
                let (line, column) = file.file.line_col(at + 1);
                out.push(diag(file, line, column, recv, method));
            }
        }
    }
}

fn check_for_loops(
    file: &FileIndex,
    range: Range<usize>,
    hash_names: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let code = &file.file.code;
    let mut from = range.start;
    while let Some(at) = lexer::find_word(code, from, "for") {
        from = at + 3;
        if at >= range.end {
            break;
        }
        let Some(in_kw) = lexer::find_word(code, at + 3, "in") else {
            continue;
        };
        let Some(open) = super::header_body_open(code, in_kw + 2) else {
            continue;
        };
        // The iterated expression, stripped of borrows: flag when it is a
        // plain (possibly dotted) path ending in a hash-bound name.
        let expr = code[in_kw + 2..open]
            .trim()
            .trim_start_matches('&')
            .trim_start_matches("mut ")
            .trim();
        if expr
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
        {
            if let Some(last) = expr.rsplit('.').next() {
                if hash_names.contains(last) {
                    let (line, column) = file.file.line_col(at + 1);
                    out.push(diag(file, line, column, last, "for … in"));
                }
            }
        }
    }
}

fn diag(file: &FileIndex, line: usize, column: usize, name: &str, how: &str) -> Diagnostic {
    Diagnostic {
        rule: "nondet-collection-iter",
        file: file.file.path.clone(),
        line,
        column,
        message: format!(
            "iteration (`{}`) over hash-ordered `{name}` on the result surface: hash order is \
             seed- and history-dependent — use BTreeMap/BTreeSet, keep an explicit order Vec, \
             or sort before use",
            how.trim_start_matches('.').trim_end_matches('('),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&NondetCollectionIter, "crates/sigmo-core/src/merge.rs", src)
    }

    #[test]
    fn hashmap_iter_in_report_fn_is_flagged() {
        let d = run(
            "struct S { counts: HashMap<u32, u64> }\nfn merge(s: &S) -> RunReport {\n    let mut total = 0;\n    for (_k, v) in s.counts.iter() {\n        total += v;\n    }\n    RunReport { total }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("counts"));
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn struct_field_swapped_to_hashset_is_flagged() {
        // The seeded-violation shape: a BTreeSet field becomes a HashSet
        // and an existing `.iter()` in a report merge starts leaking hash
        // order.
        let btree = "struct Plan { crashed: BTreeSet<usize> }\nfn report(p: &Plan) -> FaultReport {\n    let order: Vec<usize> = p.crashed.iter().copied().collect();\n    FaultReport { order }\n}\n";
        let hash = btree.replace("BTreeSet", "HashSet");
        assert!(run(btree).is_empty());
        let d = run(&hash);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("crashed"));
    }

    #[test]
    fn for_loop_over_hash_binding_is_flagged() {
        let d = run(
            "fn merge(seen: HashSet<u64>) -> StreamReport {\n    let mut n = 0;\n    for v in &seen {\n        n += v;\n    }\n    StreamReport { n }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn keyed_access_is_not_flagged() {
        let d = run(
            "fn merge(counts: &HashMap<u32, u64>, keys: &[u32]) -> RunReport {\n    let mut total = 0;\n    for k in keys {\n        total += counts.get(k).copied().unwrap_or(0);\n    }\n    RunReport { total }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hash_iteration_off_the_result_surface_is_not_flagged() {
        // No report type, no kernel: host-side debug helper.
        let d = run(
            "fn dump(counts: &HashMap<u32, u64>) {\n    for (k, v) in counts.iter() {\n        log(k, v);\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn btree_iteration_is_fine() {
        let d = run(
            "fn merge(counts: &BTreeMap<u32, u64>) -> RunReport {\n    let total = counts.values().sum();\n    RunReport { total }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kernel_reachable_hash_iteration_is_flagged() {
        let d = run(
            "fn host(q: &Queue) {\n    q.parallel_for(\"k\", \"join\", n, 64, |i, c| { scan(i, c); });\n}\nfn scan(i: usize, c: &K) {\n    let cache: HashMap<u32, u32> = build(i);\n    for (k, v) in cache.iter() {\n        c.add_instructions(1);\n    }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
