//! **uncharged-access** — bitmap traffic in kernel-reachable code must be
//! charged to the device counters.
//!
//! The paper-style roofline and the committed `BENCH_pipeline.json` are
//! derived entirely from the hand-maintained counter model
//! (`word_reads`, `bytes_read`, `atomic_ops` in `sigmo-device::counters`).
//! The model only stays honest if every word actually loaded or atomically
//! updated on a kernel path is charged by the function that generates the
//! traffic — or by a caller that the function visibly reports its counts
//! to, which is exactly what the pragma escape hatch documents.
//!
//! Per kernel-reachable `fn` (found through the call graph, wherever the
//! fn lives): if the body performs bitmap traffic (atomic RMW ops,
//! word-parallel row scans, or probes/updates on a `bitmap` receiver) but
//! never calls a `counters.*` / `record_*` / `add_*` charge, every traffic
//! site is flagged. Launch closure bodies are checked against their
//! enclosing fn, which is where their charges conventionally sit. The
//! counter implementation itself — fns named `add_*` / `record_*` — is the
//! charge sink and is exempt: its `fetch_add`s *are* the charging.

use super::{find_all, in_ranges, Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;
use std::ops::Range;

/// See the module docs.
pub struct UnchargedAccess;

/// Operations that generate modeled global-memory traffic.
const TRAFFIC_OPS: &[&str] = &[
    ".fetch_or(",
    ".fetch_and(",
    ".fetch_xor(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_max(",
    ".fetch_min(",
    ".iter_set_in_range(",
    ".next_set_in_range(",
    ".row_any_in_range(",
    ".row_any_in_range_counted(",
    ".row_count_in_range(",
    "bitmap.get(",
    "bitmap.set(",
    "bitmap.clear(",
];

/// Calls that charge the device counters.
const CHARGE_CALLS: &[&str] = &[
    "counters.add_",
    "counters.record_",
    ".add_instructions(",
    ".add_bytes_read(",
    ".add_bytes_written(",
    ".add_atomics(",
    ".add_word_reads(",
    ".record_trips(",
];

impl Rule for UnchargedAccess {
    fn name(&self) -> &'static str {
        "uncharged-access"
    }

    fn description(&self) -> &'static str {
        "bitmap word/atomic traffic in a kernel-reachable fn that never charges the device counters"
    }

    fn check(&self, file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        if ctx.kernel.is_empty() {
            return;
        }
        // Kernel-reachable fns: traffic and charge both scoped to the body.
        for item in &file.fns {
            if !ctx.in_kernel(item.body.start) {
                continue;
            }
            if item.name.starts_with("add_") || item.name.starts_with("record_") {
                continue; // the counter implementation is the charge sink
            }
            flag_uncharged(file, item.body.clone(), item.body.clone(), &item.name, out);
        }
        // Launch closure bodies: traffic inside the closure, charge
        // accepted anywhere in the enclosing fn (the conventional spot).
        for closure in &file.kernel_closures {
            let scope = file
                .fns
                .iter()
                .find(|f| f.body.start <= closure.start && closure.end <= f.body.end);
            // A closure inside a kernel-reachable fn was already covered.
            if scope.is_some_and(|f| ctx.in_kernel(f.body.start)) {
                continue;
            }
            let (charge_scope, name) = match scope {
                Some(f) => (f.body.clone(), f.name.as_str()),
                None => (closure.clone(), "<kernel closure>"),
            };
            flag_uncharged(file, closure.clone(), charge_scope, name, out);
        }
    }
}

/// Flags every traffic site in `traffic_scope` unless `charge_scope`
/// contains a charge call.
fn flag_uncharged(
    file: &FileIndex,
    traffic_scope: Range<usize>,
    charge_scope: Range<usize>,
    scope_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    if in_ranges(&file.tests, traffic_scope.start) {
        return;
    }
    let charged = CHARGE_CALLS
        .iter()
        .any(|c| !find_all(&file.file, charge_scope.clone(), c).is_empty());
    if charged {
        return;
    }
    for op in TRAFFIC_OPS {
        for at in find_all(&file.file, traffic_scope.clone(), op) {
            let (line, column) = file.file.line_col(at + 1);
            out.push(Diagnostic {
                rule: "uncharged-access",
                file: file.file.path.clone(),
                line,
                column,
                message: format!(
                    "`{}` in kernel-reachable fn `{}` is never charged to the device counters \
                     (counters.add_* / record_*): the BENCH_pipeline.json accounting model \
                     would silently drift — charge the traffic or pragma-document who \
                     charges it",
                    op.trim_start_matches('.').trim_end_matches('('),
                    scope_name,
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&UnchargedAccess, "crates/sigmo-core/src/mapping.rs", src)
    }

    /// A launch whose closure calls `probe`, making `probe` kernel-reachable.
    fn kernelized(body_fn: &str) -> String {
        format!(
            "fn host(q: &Queue, c0: &K) {{\n    q.parallel_for(\"k\", \"map\", n, 128, |i, c| {{ probe(i, c); }});\n    c0.add_instructions(1);\n}}\n{body_fn}"
        )
    }

    #[test]
    fn uncharged_scan_in_reachable_fn_is_flagged() {
        let d = run(&kernelized(
            "fn probe(i: usize, b: &B) -> bool {\n    b.row_any_in_range(0, 0, 64)\n}\n",
        ));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("probe"));
    }

    #[test]
    fn charged_scan_is_clean() {
        let d = run(&kernelized(
            "fn probe(i: usize, counters: &K) -> bool {\n    let any = b.row_any_in_range(0, 0, 64);\n    counters.add_word_reads(1, 8);\n    any\n}\n",
        ));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unreachable_fn_traffic_is_not_flagged() {
        // `bump` is never called from a kernel: host-side bookkeeping.
        let d = run(
            "fn host(q: &Queue) {\n    q.parallel_for(\"k\", \"map\", n, 128, |i, c| { c.add_instructions(1); });\n}\nfn bump(x: &AtomicU64) {\n    x.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn uncharged_traffic_inside_closure_is_flagged() {
        let d = run(
            "fn host(q: &Queue) {\n    q.parallel_for(\"k\", \"map\", n, 128, |i, c| {\n        bitmap.set(i, 1);\n    });\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("host"));
    }

    #[test]
    fn closure_traffic_charged_in_enclosing_fn_is_clean() {
        let d = run(
            "fn host(q: &Queue, counters: &K) {\n    q.parallel_for(\"k\", \"map\", n, 128, |i, c| {\n        bitmap.set(i, 1);\n    });\n    counters.add_atomics(n);\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn charge_sink_fns_are_exempt() {
        let d = run(&kernelized(
            "fn probe(i: usize, c: &K) {\n    add_atomics(c, 1);\n    c.add_instructions(1);\n}\nfn add_atomics(c: &K, n: u64) {\n    c.total.fetch_add(n, Ordering::Relaxed);\n}\n",
        ));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_mods_are_skipped() {
        let d = run(
            "#[cfg(test)]\nmod tests {\n    fn t(b: &B) { assert!(b.row_any_in_range(0, 0, 8)); }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
