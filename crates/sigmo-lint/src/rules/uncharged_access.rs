//! **uncharged-access** — bitmap traffic in kernel modules must be charged
//! to the device counters.
//!
//! The paper-style roofline and the committed `BENCH_pipeline.json` are
//! derived entirely from the hand-maintained counter model
//! (`word_reads`, `bytes_read`, `atomic_ops` in `sigmo-device::counters`).
//! The model only stays honest if every word actually loaded or atomically
//! updated in a kernel module is charged by the function that generates
//! the traffic — or by a caller that the function visibly reports its
//! counts to, which is exactly what the pragma escape hatch documents.
//!
//! Per non-test `fn` in a kernel module: if the body performs bitmap
//! traffic (atomic RMW ops, word-parallel row scans, or probes/updates on
//! a `bitmap` receiver) but never calls a `counters.*` / `record_*` /
//! `add_*` charge, every traffic site is flagged.

use super::{file_name, find_all, fn_items, in_ranges, Diagnostic, Rule, KERNEL_MODULE_FILES};
use crate::lexer::SourceFile;

/// See the module docs.
pub struct UnchargedAccess;

/// Operations that generate modeled global-memory traffic.
const TRAFFIC_OPS: &[&str] = &[
    ".fetch_or(",
    ".fetch_and(",
    ".fetch_xor(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_max(",
    ".fetch_min(",
    ".iter_set_in_range(",
    ".next_set_in_range(",
    ".row_any_in_range(",
    ".row_any_in_range_counted(",
    ".row_count_in_range(",
    "bitmap.get(",
    "bitmap.set(",
    "bitmap.clear(",
];

/// Calls that charge the device counters.
const CHARGE_CALLS: &[&str] = &[
    "counters.add_",
    "counters.record_",
    ".add_instructions(",
    ".add_bytes_read(",
    ".add_bytes_written(",
    ".add_atomics(",
    ".add_word_reads(",
    ".record_trips(",
];

impl Rule for UnchargedAccess {
    fn name(&self) -> &'static str {
        "uncharged-access"
    }

    fn description(&self) -> &'static str {
        "bitmap word/atomic traffic in a kernel module whose enclosing fn never charges the device counters"
    }

    fn applies(&self, path: &str) -> bool {
        KERNEL_MODULE_FILES.contains(&file_name(path))
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tests = file.test_ranges();
        for item in fn_items(file) {
            if in_ranges(&tests, item.at) {
                continue;
            }
            let charged = CHARGE_CALLS
                .iter()
                .any(|c| !find_all(file, item.body.clone(), c).is_empty());
            if charged {
                continue;
            }
            for op in TRAFFIC_OPS {
                for at in find_all(file, item.body.clone(), op) {
                    let (line, column) = file.line_col(at + 1);
                    out.push(Diagnostic {
                        rule: "uncharged-access",
                        file: file.path.clone(),
                        line,
                        column,
                        message: format!(
                            "`{}` in kernel-module fn `{}` is never charged to the device counters \
                             (counters.add_* / record_*): the BENCH_pipeline.json accounting model \
                             would silently drift — charge the traffic or pragma-document who \
                             charges it",
                            op.trim_start_matches('.').trim_end_matches('('),
                            item.name,
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = lex("crates/sigmo-core/src/mapping.rs", src);
        let mut out = Vec::new();
        UnchargedAccess.check(&f, &mut out);
        out
    }

    #[test]
    fn uncharged_scan_is_flagged() {
        let d = run("fn probe(b: &B) -> bool {\n    b.row_any_in_range(0, 0, 64)\n}\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("probe"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn charged_scan_is_clean() {
        let d = run(
            "fn probe(b: &B, counters: &K) -> bool {\n    let any = b.row_any_in_range(0, 0, 64);\n    counters.add_word_reads(1, 8);\n    any\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn fetch_ops_count_as_traffic() {
        let d = run("fn bump(x: &AtomicU64) {\n    x.fetch_add(1, Ordering::Relaxed);\n}\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ctx_counters_charge_is_recognized() {
        let d = run(
            "fn k(ctx: &Ctx, bitmap: &B) {\n    bitmap.set(0, 1);\n    ctx.counters.add_atomics(1);\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn functions_without_traffic_are_clean() {
        let d = run("fn pure(a: u32) -> u32 {\n    a + 1\n}\n");
        assert!(d.is_empty());
    }

    #[test]
    fn test_mods_are_skipped() {
        let d = run(
            "#[cfg(test)]\nmod tests {\n    fn t(b: &B) { assert!(b.row_any_in_range(0, 0, 8)); }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn only_kernel_module_files_apply() {
        assert!(UnchargedAccess.applies("crates/sigmo-core/src/filter.rs"));
        assert!(UnchargedAccess.applies("crates/sigmo-core/src/join_bfs.rs"));
        assert!(!UnchargedAccess.applies("crates/sigmo-core/src/candidates.rs"));
        assert!(!UnchargedAccess.applies("crates/sigmo-device/src/counters.rs"));
    }
}
