//! **atomic-ordering** — kernel atomics default to `Ordering::Relaxed`.
//!
//! The counter model and the candidate bitmap rely on relaxed atomics for
//! negligible-overhead accounting (counters.rs's stated convention) and
//! for contended bit updates; the host-synchronized pipeline needs no
//! inter-kernel fences. Stronger orderings are either accidental (copied
//! from generic examples, costing real fences on real hardware) or real
//! publication points — and publication points must be *documented*, via
//! a pragma that says what is being published to whom.
//!
//! Flagged anywhere in the workspace:
//!
//! * `Ordering::SeqCst`, `Ordering::AcqRel`, `Ordering::Acquire`,
//!   `Ordering::Release` — non-relaxed orderings (pragma the documented
//!   publication points);
//! * a *bare* ordering identifier (`Relaxed`, `SeqCst`, …) without the
//!   `Ordering::` qualifier — hides the ordering from review and from
//!   this analyzer's audit trail; spell it out.

use super::{Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;
use crate::lexer::SourceFile;

/// See the module docs.
pub struct AtomicOrdering;

const NON_RELAXED: &[&str] = &["SeqCst", "AcqRel", "Acquire", "Release"];

impl Rule for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn description(&self) -> &'static str {
        "non-relaxed or bare atomic memory orderings (kernel discipline: Ordering::Relaxed, documented publication points excepted)"
    }

    fn check(&self, file: &FileIndex, _ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        let file = &file.file;
        let code = &file.code;
        for word in NON_RELAXED {
            for at in word_occurrences(code, word) {
                let (line, column) = file.line_col(at);
                if qualified(code, at) {
                    out.push(Diagnostic {
                        rule: "atomic-ordering",
                        file: file.path.clone(),
                        line,
                        column,
                        message: format!(
                            "non-relaxed atomic ordering `Ordering::{word}`: kernel discipline is \
                             Ordering::Relaxed — if this is a documented publication point, \
                             pragma-allow it with the rationale",
                        ),
                    });
                } else {
                    out.push(bare(file, word, line, column));
                }
            }
        }
        // Bare `Relaxed` is correct in intent but hides the ordering from
        // `Ordering::`-anchored audits; require the qualified spelling.
        for at in word_occurrences(code, "Relaxed") {
            if !qualified(code, at) {
                let (line, column) = file.line_col(at);
                out.push(bare(file, "Relaxed", line, column));
            }
        }
    }
}

fn bare(file: &SourceFile, word: &str, line: usize, column: usize) -> Diagnostic {
    Diagnostic {
        rule: "atomic-ordering",
        file: file.path.clone(),
        line,
        column,
        message: format!(
            "bare atomic ordering `{word}`: write `Ordering::{word}` so the ordering stays \
             visible to review and to this analyzer",
        ),
    }
}

/// True when the identifier at `at` is written `Ordering::<ident>`.
fn qualified(code: &str, at: usize) -> bool {
    code[..at].ends_with("Ordering::")
}

/// All whole-word occurrences of `word` in `code`.
fn word_occurrences(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = crate::lexer::find_word(code, from, word) {
        out.push(at);
        from = at + word.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        crate::rules::run_rule(&AtomicOrdering, "crates/sigmo-device/src/counters.rs", src)
    }

    #[test]
    fn relaxed_qualified_is_clean() {
        assert!(run("x.fetch_add(1, Ordering::Relaxed);\n").is_empty());
    }

    #[test]
    fn seqcst_is_flagged() {
        let d = run("x.store(1, Ordering::SeqCst);\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("SeqCst"));
    }

    #[test]
    fn acquire_release_flagged_including_imports() {
        let d = run("use std::sync::atomic::Ordering::Acquire;\nx.store(1, Ordering::Release);\n");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn bare_ordering_is_flagged_even_when_relaxed() {
        let d = run("x.load(Relaxed);\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("bare"));
    }

    #[test]
    fn bare_seqcst_is_flagged_once() {
        let d = run("x.load(SeqCst);\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("bare"));
    }

    #[test]
    fn identifiers_containing_words_are_not_flagged() {
        assert!(run("let release_mode = AcquireLike::new();\n").is_empty());
    }

    #[test]
    fn comments_and_strings_are_ignored() {
        assert!(run("// SeqCst would be wrong here\nlet s = \"Acquire\";\n").is_empty());
    }
}
