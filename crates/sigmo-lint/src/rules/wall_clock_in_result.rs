//! **wall-clock-in-result** — no wall-clock or randomness APIs on the
//! result surface.
//!
//! `Instant::now()`, `SystemTime`, thread identities and RNGs are the
//! canonical nondeterminism inlets: a value derived from any of them
//! differs run to run, so if one feeds a reported field the bit-identical
//! invariant is gone before a scheduler ever gets involved. Measurement
//! code *should* read clocks — which is why the test/bench harnesses are
//! context-exempt and why `wall_time`-style fields exist — but every
//! clock read on a kernel- or report-reachable path must be deliberate
//! and say so: the standing justification is "display-only, excluded
//! from determinism keys" (the dynamic tests key records on everything
//! *except* wall time; see `tests/determinism_queue.rs`).

use super::{find_all, Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;
use std::ops::Range;

/// See the module docs.
pub struct WallClockInResult;

/// Wall-clock and randomness entry points.
const CLOCK_APIS: &[&str] = &[
    "Instant::now(",
    "SystemTime::now(",
    ".elapsed(",
    "thread_rng(",
    "thread::current(",
    "ThreadId",
];

impl Rule for WallClockInResult {
    fn name(&self) -> &'static str {
        "wall-clock-in-result"
    }

    fn description(&self) -> &'static str {
        "wall-clock / randomness API on the result surface: run-to-run values leak into results"
    }

    fn requires_justification(&self) -> bool {
        true
    }

    fn check(&self, file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        let mut ranges: Vec<Range<usize>> = ctx.kernel.clone();
        ranges.extend(ctx.report.iter().cloned());
        for range in &ranges {
            for api in CLOCK_APIS {
                for at in find_all(&file.file, range.clone(), api) {
                    let (line, column) = file.file.line_col(at + 1);
                    out.push(Diagnostic {
                        rule: "wall-clock-in-result",
                        file: file.file.path.clone(),
                        line,
                        column,
                        message: format!(
                            "`{}` on the result surface: wall-clock/randomness values differ \
                             run to run — keep them out of reported fields, or justify the \
                             pragma with \"display-only, excluded from determinism keys\"",
                            api.trim_end_matches('('),
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&WallClockInResult, "crates/sigmo-device/src/q.rs", src)
    }

    #[test]
    fn instant_now_in_report_builder_is_flagged() {
        let d = run(
            "fn launch() -> KernelRecord {\n    let start = Instant::now();\n    let wall = start.elapsed();\n    KernelRecord { wall_time: wall }\n}\n",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("Instant::now"));
        assert!(d[1].message.contains("elapsed"));
    }

    #[test]
    fn clock_in_kernel_reachable_code_is_flagged() {
        let d = run(
            "fn host(q: &Queue) {\n    q.parallel_for(\"k\", \"x\", n, 64, |i, c| { step(i, c); });\n}\nfn step(i: usize, c: &K) {\n    let t = Instant::now();\n    c.add_instructions(t.elapsed().as_nanos() as u64);\n}\n",
        );
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn host_side_timing_is_fine() {
        let d = run(
            "fn bench() {\n    let start = Instant::now();\n    work();\n    println!(\"{:?}\", start.elapsed());\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn thread_identity_in_report_is_flagged() {
        let d = run(
            "fn tag() -> StreamReport {\n    let id = thread::current().id();\n    StreamReport { id }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
