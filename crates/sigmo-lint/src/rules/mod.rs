//! The SIGMo kernel-discipline rules.
//!
//! Each rule is an independently testable module implementing [`Rule`].
//! Rules scan the blanked code view of one file (see [`crate::lexer`]) and
//! emit [`Diagnostic`]s; pragma suppression and ordering happen in the
//! driver ([`crate::analyze_source`]).

pub mod alloc_in_kernel;
pub mod atomic_ordering;
pub mod per_bit_probe;
pub mod unbounded_kernel_loop;
pub mod uncharged_access;
pub mod unsafe_safety;

use crate::lexer::{self, SourceFile};

/// One finding, anchored to a file:line:column span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (kebab-case, matches the pragma spelling).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub column: usize,
    /// Human-readable explanation with the expected remedy.
    pub message: String,
}

/// A workspace invariant checked per file.
pub trait Rule {
    /// Kebab-case rule name, as written in `allow(...)` pragmas.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Whether the rule runs on this file (matched on the file name, so
    /// fixtures exercise the same gates as the real tree).
    fn applies(&self, path: &str) -> bool;
    /// Scans the file and appends findings.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(per_bit_probe::PerBitProbe),
        Box::new(atomic_ordering::AtomicOrdering),
        Box::new(uncharged_access::UnchargedAccess),
        Box::new(unsafe_safety::UnsafeSafety),
        Box::new(alloc_in_kernel::AllocInKernel),
        Box::new(unbounded_kernel_loop::UnboundedKernelLoop),
    ]
}

/// File name (final path component) of a `/`-separated relative path.
pub fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// The word-parallel hot-path modules: the files whose inner loops define
/// SIGMo's memory-traffic profile (PR 1's filter/join rework).
pub const HOT_PATH_FILES: &[&str] = &[
    "filter.rs",
    "join.rs",
    "join_bfs.rs",
    "candidates.rs",
    "mapping.rs",
    "naive.rs",
];

/// The kernel modules: files that launch device kernels and own the
/// counter accounting behind `BENCH_pipeline.json`.
pub const KERNEL_MODULE_FILES: &[&str] = &["filter.rs", "join.rs", "join_bfs.rs", "mapping.rs"];

/// Every kernel-launch entry point, including the stop-aware `_until`
/// variants PR 3's governor added (the plain forms delegate to them).
/// Literal match on the trailing `(` keeps `parallel_for` from matching
/// its own `_until` spelling twice.
pub const KERNEL_LAUNCHES: &[&str] = &[
    ".parallel_for(",
    ".parallel_for_until(",
    ".parallel_for_work_group(",
    ".parallel_for_work_group_until(",
];

/// Offset of the `{` opening a loop body, scanning from `from` (just past
/// the loop keyword / header start) and skipping `(...)`/`[...]` groups
/// (struct-literal braces cannot appear unparenthesized in a loop header).
/// Returns `None` at a `;` — the construct was not a loop with a body.
pub fn header_body_open(code: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut i = from;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'{' if paren == 0 && bracket == 0 => return Some(i),
            b';' if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// A `fn` item: its name and the byte range of its body in `code`.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Offset of the `fn` keyword.
    pub at: usize,
    /// Body byte range (inside the braces, exclusive of them).
    pub body: std::ops::Range<usize>,
}

/// All `fn` items of a file (any nesting level). Declarations without a
/// body (`fn f(...);`) are skipped.
pub fn fn_items(file: &SourceFile) -> Vec<FnItem> {
    let code = &file.code;
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = lexer::find_word(code, from, "fn") {
        from = at + 2;
        let bytes = code.as_bytes();
        let mut i = at + 2;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && lexer::is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` in an `Fn(..)` bound or similar
        }
        let name = code[name_start..i].to_string();
        // Parameter list, then the first `{` (body) or `;` (declaration).
        let Some(open_paren) = code[i..].find('(').map(|p| i + p) else {
            continue;
        };
        let Some(close_paren) = lexer::matching_paren(code, open_paren) else {
            continue;
        };
        let mut j = close_paren + 1;
        let mut body = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    if let Some(close) = lexer::matching_brace(code, j) {
                        body = Some(j + 1..close);
                    }
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        if let Some(body) = body {
            from = body.start;
            out.push(FnItem { name, at, body });
        }
    }
    out
}

/// Finds occurrences of `pat` (a literal like `".get("`) within `range`
/// of the file's code, returning absolute offsets. When `pat` starts with
/// an identifier byte the match is word-boundary checked on the left.
pub fn find_all(file: &SourceFile, range: std::ops::Range<usize>, pat: &str) -> Vec<usize> {
    let code = &file.code[range.clone()];
    let bytes = file.code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(pat) {
        let abs = range.start + from + rel;
        let boundary_ok = !pat
            .as_bytes()
            .first()
            .is_some_and(|&b| lexer::is_ident_byte(b))
            || abs == 0
            || !lexer::is_ident_byte(bytes[abs - 1]);
        if boundary_ok {
            out.push(abs);
        }
        from += rel + pat.len();
    }
    out
}

/// True when `offset` falls inside any of the given byte ranges.
pub fn in_ranges(ranges: &[std::ops::Range<usize>], offset: usize) -> bool {
    ranges.iter().any(|r| r.contains(&offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_items_finds_multiline_signatures_and_nested_bodies() {
        let src = "\
pub fn outer(
    a: u32,
) -> u32 {
    fn inner(b: u32) -> u32 { b }
    inner(a)
}
trait T { fn decl(&self); }
";
        let f = lex("x.rs", src);
        let items = fn_items(&f);
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        let outer = &items[0];
        assert!(f.code[outer.body.clone()].contains("inner(a)"));
    }

    #[test]
    fn find_all_respects_word_boundaries() {
        let f = lex("x.rs", "bitmap.get(a); xbitmap.get(b); map.fetch_or(c);");
        assert_eq!(find_all(&f, 0..f.code.len(), "bitmap.get(").len(), 1);
        assert_eq!(find_all(&f, 0..f.code.len(), ".fetch_or(").len(), 1);
    }
}
