//! The SIGMo kernel-discipline and determinism rules.
//!
//! Each rule is an independently testable module implementing [`Rule`].
//! Rules scan one indexed file (see [`crate::index`]) together with its
//! [`RuleCtx`] — the kernel- and report-reachability byte ranges computed
//! by [`crate::reach`] — and emit [`Diagnostic`]s; pragma suppression and
//! ordering happen in the driver ([`crate::analyze_sources`]).
//!
//! Two families:
//!
//! * **kernel discipline** (per-bit probes, allocation, uncharged traffic,
//!   unbounded loops) runs over *kernel-reachable* code — wherever it
//!   lives, found through the call graph rather than a file-name list;
//! * **determinism** (collection iteration order, float accumulation,
//!   relaxed reads, wall clock, unordered parallel merges) runs over the
//!   *result surface* — kernel code plus everything report construction
//!   reaches. Suppressing a determinism rule requires a written
//!   justification in the pragma ([`Rule::requires_justification`]).
//!
//! File-wide rules (atomic orderings, unsafe hygiene) ignore the context
//! and keep their original everywhere semantics.

pub mod alloc_in_kernel;
pub mod atomic_ordering;
pub mod float_accumulation;
pub mod nondet_collection_iter;
pub mod per_bit_probe;
pub mod relaxed_read_in_report;
pub mod unbounded_kernel_loop;
pub mod uncharged_access;
pub mod unordered_par_collect;
pub mod unsafe_safety;
pub mod wall_clock_in_result;

use crate::index::FileIndex;
use crate::lexer::{self, SourceFile};
use std::ops::Range;

/// One finding, anchored to a file:line:column span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (kebab-case, matches the pragma spelling).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub column: usize,
    /// Human-readable explanation with the expected remedy.
    pub message: String,
}

/// Per-file reachability context handed to every rule: the byte ranges of
/// this file that are kernel-reachable (launch closures plus fns the call
/// graph reaches from them) and report-reachable (fns that build result
/// reports, plus their callees).
#[derive(Debug, Default)]
pub struct RuleCtx {
    /// Kernel-context byte ranges, sorted by start.
    pub kernel: Vec<Range<usize>>,
    /// Report-context byte ranges, sorted by start.
    pub report: Vec<Range<usize>>,
}

impl RuleCtx {
    /// True when `at` is inside kernel context.
    pub fn in_kernel(&self, at: usize) -> bool {
        in_ranges(&self.kernel, at)
    }

    /// True when `at` is inside the result surface (kernel or report
    /// context): code whose behavior the determinism invariant pins.
    pub fn in_result(&self, at: usize) -> bool {
        in_ranges(&self.kernel, at) || in_ranges(&self.report, at)
    }
}

/// A workspace invariant checked per file against its reachability
/// context.
pub trait Rule {
    /// Kebab-case rule name, as written in `allow(...)` pragmas.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Whether a pragma suppressing this rule must carry a written
    /// justification (the determinism family does; see the pragma docs).
    fn requires_justification(&self) -> bool {
        false
    }
    /// Scans the file and appends findings.
    fn check(&self, file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>);
}

/// Every rule, in reporting order: kernel discipline first, then the
/// determinism family, then the file-wide hygiene rules.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(per_bit_probe::PerBitProbe),
        Box::new(uncharged_access::UnchargedAccess),
        Box::new(alloc_in_kernel::AllocInKernel),
        Box::new(unbounded_kernel_loop::UnboundedKernelLoop),
        Box::new(nondet_collection_iter::NondetCollectionIter),
        Box::new(float_accumulation::FloatAccumulation),
        Box::new(relaxed_read_in_report::RelaxedReadInReport),
        Box::new(wall_clock_in_result::WallClockInResult),
        Box::new(unordered_par_collect::UnorderedParCollect),
        Box::new(atomic_ordering::AtomicOrdering),
        Box::new(unsafe_safety::UnsafeSafety),
    ]
}

/// Every kernel-launch entry point: the plain, stop-aware (`_until`),
/// chunk-dispatch and work-group forms. Literal match on the trailing `(`
/// keeps `parallel_for` from matching its own `_until` spelling twice.
pub const KERNEL_LAUNCHES: &[&str] = &[
    ".parallel_for(",
    ".parallel_for_until(",
    ".parallel_for_chunks_until(",
    ".parallel_for_work_group(",
    ".parallel_for_work_group_until(",
];

/// Offset of the `{` opening a loop body, scanning from `from` (just past
/// the loop keyword / header start) and skipping `(...)`/`[...]` groups
/// (struct-literal braces cannot appear unparenthesized in a loop header).
/// Returns `None` at a `;` — the construct was not a loop with a body.
pub fn header_body_open(code: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut i = from;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'{' if paren == 0 && bracket == 0 => return Some(i),
            b';' if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// A `fn` item: its name and the byte range of its body in `code`.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Offset of the `fn` keyword.
    pub at: usize,
    /// Body byte range (inside the braces, exclusive of them).
    pub body: std::ops::Range<usize>,
}

/// All `fn` items of a file (any nesting level). Declarations without a
/// body (`fn f(...);`) are skipped.
pub fn fn_items(file: &SourceFile) -> Vec<FnItem> {
    let code = &file.code;
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = lexer::find_word(code, from, "fn") {
        from = at + 2;
        let bytes = code.as_bytes();
        let mut i = at + 2;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && lexer::is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` in an `Fn(..)` bound or similar
        }
        let name = code[name_start..i].to_string();
        // Parameter list, then the first `{` (body) or `;` (declaration).
        let Some(open_paren) = code[i..].find('(').map(|p| i + p) else {
            continue;
        };
        let Some(close_paren) = lexer::matching_paren(code, open_paren) else {
            continue;
        };
        let mut j = close_paren + 1;
        let mut body = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    if let Some(close) = lexer::matching_brace(code, j) {
                        body = Some(j + 1..close);
                    }
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        if let Some(body) = body {
            from = body.start;
            out.push(FnItem { name, at, body });
        }
    }
    out
}

/// Finds occurrences of `pat` (a literal like `".get("`) within `range`
/// of the file's code, returning absolute offsets. When `pat` starts with
/// an identifier byte the match is word-boundary checked on the left.
pub fn find_all(file: &SourceFile, range: std::ops::Range<usize>, pat: &str) -> Vec<usize> {
    let code = &file.code[range.clone()];
    let bytes = file.code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(pat) {
        let abs = range.start + from + rel;
        let boundary_ok = !pat
            .as_bytes()
            .first()
            .is_some_and(|&b| lexer::is_ident_byte(b))
            || abs == 0
            || !lexer::is_ident_byte(bytes[abs - 1]);
        if boundary_ok {
            out.push(abs);
        }
        from += rel + pat.len();
    }
    out
}

/// True when `offset` falls inside any of the given byte ranges.
pub fn in_ranges(ranges: &[std::ops::Range<usize>], offset: usize) -> bool {
    ranges.iter().any(|r| r.contains(&offset))
}

/// The identifier path segment ending just before `at` (exclusive): for
/// `plan.crashed.iter()` with `at` on the `.` before `iter`, returns
/// `"crashed"`. Empty when `at` is not preceded by an identifier.
pub fn receiver_segment(code: &str, at: usize) -> &str {
    let bytes = code.as_bytes();
    let mut i = at;
    while i > 0 && lexer::is_ident_byte(bytes[i - 1]) {
        i -= 1;
    }
    &code[i..at]
}

/// Names bound to any of `words` by type ascription (`name: Word<...>`,
/// including struct fields and fn params) or constructor assignment
/// (`name = Word::new(...)`). The lexical stand-in for the type inference
/// this analyzer does not have: good enough to tie `plan.crashed.iter()`
/// back to a `crashed: HashSet<usize>` field declared anywhere in the
/// file.
pub fn bound_names(code: &str, words: &[&str]) -> std::collections::BTreeSet<String> {
    let bytes = code.as_bytes();
    let mut out = std::collections::BTreeSet::new();
    for word in words {
        let mut from = 0;
        while let Some(at) = lexer::find_word(code, from, word) {
            from = at + word.len();
            if let Some(name) = binding_before(code, bytes, at) {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// The identifier bound to the type/constructor word starting at
/// `word_at`, if the word appears in a binding position: after `:` (type
/// ascription, possibly through a path and `&`/`&mut`) or after `=`
/// (constructor assignment).
fn binding_before<'a>(code: &'a str, bytes: &[u8], word_at: usize) -> Option<&'a str> {
    let mut i = word_at;
    // Skip a qualifying path (`std::collections::`) leftwards.
    loop {
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i >= 2 && &bytes[i - 2..i] == b"::" {
            i -= 2;
            while i > 0 && lexer::is_ident_byte(bytes[i - 1]) {
                i -= 1;
            }
            continue;
        }
        break;
    }
    // Skip `&` / `&mut` of a reference type.
    let word_end = |mut j: usize| {
        let start = loop {
            if j == 0 || !lexer::is_ident_byte(bytes[j - 1]) {
                break j;
            }
            j -= 1;
        };
        start
    };
    if i > 0 && lexer::is_ident_byte(bytes[i - 1]) {
        let start = word_end(i);
        if &code[start..i] == "mut" {
            i = start;
            while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                i -= 1;
            }
        }
    }
    if i > 0 && bytes[i - 1] == b'&' {
        i -= 1;
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
    }
    // A binding introducer: `name: Word` or `name = Word` (not `::`, `==`,
    // `=>`, `>=` etc.).
    let intro = *bytes.get(i.checked_sub(1)?)?;
    let before = i.checked_sub(2).map(|k| bytes[k]);
    let ok = match intro {
        b':' => before != Some(b':'),
        b'=' => !matches!(
            before,
            Some(b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'&' | b'|' | b'^')
        ),
        _ => return None,
    };
    if !ok {
        return None;
    }
    i -= 1;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let start = word_end(i);
    (start < i).then(|| &code[start..i])
}

/// True when `s` contains a float literal: `1.5`, `0.0`, `2f32`, `3f64`.
pub fn has_float_literal(s: &str) -> bool {
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if !b.is_ascii_digit() {
            continue;
        }
        if bytes.get(i + 1) == Some(&b'.') && bytes.get(i + 2).is_some_and(u8::is_ascii_digit) {
            return true;
        }
        let rest = &s[i + 1..];
        if rest.starts_with("f32") || rest.starts_with("f64") {
            return true;
        }
    }
    false
}

/// Test helper: indexes `src` as a one-file workspace, computes its
/// reachability context and runs `rule` over it — the same path the
/// driver takes, so rule unit tests exercise real contexts.
#[cfg(test)]
pub(crate) fn run_rule(rule: &dyn Rule, path: &str, src: &str) -> Vec<Diagnostic> {
    let ws = crate::index::Workspace::from_sources([(path, src)]);
    let cg = crate::callgraph::CallGraph::build(&ws);
    let reach = crate::reach::Reach::compute(&ws, &cg);
    let ctx = RuleCtx {
        kernel: reach.kernel_ranges(&ws, 0),
        report: reach.report_ranges(&ws, 0),
    };
    let mut out = Vec::new();
    rule.check(&ws.files[0], &ctx, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_items_finds_multiline_signatures_and_nested_bodies() {
        let src = "\
pub fn outer(
    a: u32,
) -> u32 {
    fn inner(b: u32) -> u32 { b }
    inner(a)
}
trait T { fn decl(&self); }
";
        let f = lex("x.rs", src);
        let items = fn_items(&f);
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        let outer = &items[0];
        assert!(f.code[outer.body.clone()].contains("inner(a)"));
    }

    #[test]
    fn find_all_respects_word_boundaries() {
        let f = lex("x.rs", "bitmap.get(a); xbitmap.get(b); map.fetch_or(c);");
        assert_eq!(find_all(&f, 0..f.code.len(), "bitmap.get(").len(), 1);
        assert_eq!(find_all(&f, 0..f.code.len(), ".fetch_or(").len(), 1);
    }

    #[test]
    fn receiver_segment_takes_last_path_component() {
        let code = "plan.crashed.iter()";
        let at = code.find(".iter").unwrap();
        assert_eq!(receiver_segment(code, at), "crashed");
        assert_eq!(receiver_segment("x.iter()", 1), "x");
        // A parenthesized receiver has no identifier before the dot:
        // conservative misses are fine, false ties are not.
        assert_eq!(receiver_segment("(x).iter()", 3), "");
        assert_eq!(receiver_segment(").iter()", 1), "");
    }
}
