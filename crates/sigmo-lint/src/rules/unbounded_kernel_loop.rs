//! **unbounded-kernel-loop** — every open-ended loop on a kernel path
//! must consult the run governor.
//!
//! PR 3's graceful-degradation contract rests on one invariant: a tripped
//! budget (deadline, step budget, embedding cap, cancellation) reaches
//! every kernel within a bounded number of steps. The DFS join's main
//! loop does this by calling `ticker.tick(gov)` once per step; the BFS
//! join and the filter kernels consult `gov.stopped()` per row / node.
//! A future `loop { ... }` added on a kernel path *without* a consult
//! would reopen the exact hole the governor closed — a pathological query
//! (wildcard clique) spins there forever and no budget can stop it.
//!
//! Detected: a bare `loop { ... }` or a `while` loop whose keyword sits in
//! kernel context — a launch closure body or a kernel-reachable fn, found
//! through the call graph — and whose body does not consult the governor
//! (`.tick(..)`, `.stopped()`, or `.heartbeat()`). `for` loops are not
//! flagged: they iterate a finite iterator and every kernel's per-element
//! work is already metered by the enclosing tick. Host-side loops are the
//! host's business; the cooperative-cancellation contract binds only code
//! a kernel can reach. `next_candidate` in `join.rs` carries a documented
//! pragma: its scan loop is bounded by one adjacency list and each call is
//! one charged DFS step of the caller.

use super::{find_all, header_body_open, Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;
use crate::lexer;

/// See the module docs.
pub struct UnboundedKernelLoop;

/// The governor-consult spellings: a ticker step, a direct stop probe, or
/// an explicit heartbeat.
const CONSULTS: &[&str] = &[".tick(", ".stopped(", ".heartbeat("];

impl Rule for UnboundedKernelLoop {
    fn name(&self) -> &'static str {
        "unbounded-kernel-loop"
    }

    fn description(&self) -> &'static str {
        "loop on a kernel path without a governor consult (tick / stopped / heartbeat): budgets could never trip it"
    }

    fn check(&self, file: &FileIndex, ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        if ctx.kernel.is_empty() {
            return;
        }
        check_keyword(file, ctx, "loop", out);
        check_keyword(file, ctx, "while", out);
    }
}

/// True when `range` of the file's code contains a governor consult.
fn consults(file: &FileIndex, range: std::ops::Range<usize>) -> bool {
    CONSULTS
        .iter()
        .any(|c| !find_all(&file.file, range.clone(), c).is_empty())
}

/// Flags every `kw { ... }` loop in kernel context whose body does not
/// consult.
fn check_keyword(file: &FileIndex, ctx: &RuleCtx, kw: &str, out: &mut Vec<Diagnostic>) {
    let code = &file.file.code;
    let mut from = 0;
    while let Some(at) = lexer::find_word(code, from, kw) {
        from = at + kw.len();
        if !ctx.in_kernel(at) {
            continue;
        }
        let Some(open) = header_body_open(code, at + kw.len()) else {
            continue;
        };
        let Some(close) = lexer::matching_brace(code, open) else {
            continue;
        };
        if !consults(file, open + 1..close) {
            let (line, column) = file.file.line_col(at + 1);
            out.push(Diagnostic {
                rule: "unbounded-kernel-loop",
                file: file.file.path.clone(),
                line,
                column,
                message: format!(
                    "`{kw}` on a kernel path without a governor consult: call \
                     `ticker.tick(gov)` (or probe `gov.stopped()`) inside the body so \
                     deadlines, step budgets and cancellation can trip it",
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&UnboundedKernelLoop, "crates/sigmo-core/src/join.rs", src)
    }

    /// A launch whose closure calls `dfs`, making `dfs` kernel-reachable.
    fn kernelized(body_fn: &str) -> String {
        format!(
            "fn host(q: &Queue) {{\n    q.parallel_for(\"k\", \"join\", n, 64, |i, c| {{ dfs(i, c); }});\n}}\n{body_fn}"
        )
    }

    #[test]
    fn bare_loop_in_reachable_fn_without_consult_is_flagged() {
        let d = run(&kernelized(
            "fn dfs(i: usize, c: &K) {\n    loop {\n        step();\n    }\n}\n",
        ));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("tick"));
    }

    #[test]
    fn loop_with_tick_is_clean() {
        let d = run(&kernelized(
            "fn dfs(i: usize, c: &K, gov: &Governor, ticker: &mut GovernorTicker) {\n    loop {\n        if ticker.tick(gov) { return; }\n        step();\n    }\n}\n",
        ));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn labeled_loop_is_still_a_loop() {
        let d = run(&kernelized(
            "fn dfs(i: usize, c: &K) {\n    'next: loop {\n        if done() { break 'next; }\n    }\n}\n",
        ));
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn loop_with_stopped_probe_is_clean() {
        let d = run(&kernelized(
            "fn dfs(i: usize, c: &K, gov: &Governor) {\n    loop {\n        if gov.stopped() { break; }\n        work();\n    }\n}\n",
        ));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn while_inside_kernel_closure_without_consult_is_flagged() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for_work_group_until(\"k\", \"join\", g, 4, 8, || gov.stopped(), |ctx| {\n        while frontier_grows() {\n            expand();\n        }\n    });\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("while"));
    }

    #[test]
    fn while_inside_kernel_closure_with_tick_is_clean() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for_until(\"k\", \"filter\", n, 128, || gov.stopped(), |i, c| {\n        while more(i) {\n            if ticker.tick(gov) { break; }\n            expand();\n        }\n    });\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn while_in_reachable_helper_without_consult_is_flagged() {
        let d = run(&kernelized(
            "fn dfs(i: usize, c: &K) {\n    while advance(i) {\n        c.add_instructions(1);\n    }\n}\n",
        ));
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn host_side_loops_are_not_flagged() {
        // Query-plan construction runs once on the host; nothing here is
        // reachable from a kernel closure.
        let d = run(
            "fn host(q: &Queue) {\n    q.parallel_for(\"k\", \"join\", n, 64, |i, c| { c.add_instructions(1); });\n}\nfn build_plan(queue: &mut VecDeque<u32>) {\n    while let Some(v) = queue.pop_front() {\n        visit(v);\n    }\n    loop {\n        if settled() { break; }\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_modules_are_skipped() {
        let d = run("#[cfg(test)]\nmod tests {\n    fn t() {\n        loop {\n            break;\n        }\n    }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
