//! **unbounded-kernel-loop** — every open-ended loop in a kernel module
//! must consult the run governor.
//!
//! PR 3's graceful-degradation contract rests on one invariant: a tripped
//! budget (deadline, step budget, embedding cap, cancellation) reaches
//! every kernel within a bounded number of steps. The DFS join's main
//! loop does this by calling `ticker.tick(gov)` once per step; the BFS
//! join and the filter kernels consult `gov.stopped()` per row / node.
//! A future `loop { ... }` added to a kernel module *without* a consult
//! would reopen the exact hole the governor closed — a pathological query
//! (wildcard clique) spins there forever and no budget can stop it.
//!
//! Two shapes are detected, outside `#[cfg(test)]`:
//!
//! 1. a bare `loop { ... }` anywhere in a kernel module whose body does
//!    not consult the governor (`.tick(..)`, `.stopped()`, or
//!    `.heartbeat()`) — `loop` is unbounded by construction, so the
//!    consult (or an audited pragma arguing a tight static bound) is
//!    mandatory;
//! 2. a `while` loop *inside a kernel launch closure* whose body does not
//!    consult — `while` in host code may be data-bounded, but inside a
//!    kernel it runs under the same cooperative-cancellation contract.
//!
//! `for` loops are not flagged: they iterate a finite iterator and every
//! kernel's per-element work is already metered by the enclosing tick.
//! `next_candidate` in `join.rs` carries a documented pragma: its scan
//! loop is bounded by one adjacency list and each call is one charged
//! DFS step of the caller.

use super::{
    file_name, find_all, header_body_open, in_ranges, Diagnostic, Rule, KERNEL_LAUNCHES,
    KERNEL_MODULE_FILES,
};
use crate::lexer::{self, SourceFile};

/// See the module docs.
pub struct UnboundedKernelLoop;

/// The governor-consult spellings: a ticker step, a direct stop probe, or
/// an explicit heartbeat.
const CONSULTS: &[&str] = &[".tick(", ".stopped(", ".heartbeat("];

impl Rule for UnboundedKernelLoop {
    fn name(&self) -> &'static str {
        "unbounded-kernel-loop"
    }

    fn description(&self) -> &'static str {
        "kernel loop without a governor consult (tick / stopped / heartbeat): budgets could never trip it"
    }

    fn applies(&self, path: &str) -> bool {
        KERNEL_MODULE_FILES.contains(&file_name(path))
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tests = file.test_ranges();
        check_bare_loops(file, &tests, out);
        check_kernel_whiles(file, &tests, out);
    }
}

/// True when `range` of the file's code contains a governor consult.
fn consults(file: &SourceFile, range: std::ops::Range<usize>) -> bool {
    CONSULTS
        .iter()
        .any(|c| !find_all(file, range.clone(), c).is_empty())
}

/// Shape 1: every bare `loop { ... }` outside tests must consult within
/// its own body.
fn check_bare_loops(
    file: &SourceFile,
    tests: &[std::ops::Range<usize>],
    out: &mut Vec<Diagnostic>,
) {
    let code = &file.code;
    let mut from = 0;
    while let Some(at) = lexer::find_word(code, from, "loop") {
        from = at + 4;
        if in_ranges(tests, at) {
            continue;
        }
        let Some(open) = header_body_open(code, at + 4) else {
            continue;
        };
        let Some(close) = lexer::matching_brace(code, open) else {
            continue;
        };
        if !consults(file, open + 1..close) {
            let (line, column) = file.line_col(at + 1);
            out.push(Diagnostic {
                rule: "unbounded-kernel-loop",
                file: file.path.clone(),
                line,
                column,
                message: "`loop` in a kernel module without a governor consult: call \
                          `ticker.tick(gov)` (or probe `gov.stopped()`) inside the body so \
                          deadlines, step budgets and cancellation can trip it"
                    .into(),
            });
        }
    }
}

/// Shape 2: `while` loops inside kernel launch closures must consult
/// within their own body.
fn check_kernel_whiles(
    file: &SourceFile,
    tests: &[std::ops::Range<usize>],
    out: &mut Vec<Diagnostic>,
) {
    let code = &file.code;
    // Collect the kernel launch argument regions first.
    let mut kernels: Vec<std::ops::Range<usize>> = Vec::new();
    for launch in KERNEL_LAUNCHES {
        for at in find_all(file, 0..code.len(), launch) {
            if in_ranges(tests, at) {
                continue;
            }
            let args_open = at + launch.len() - 1;
            if let Some(args_close) = lexer::matching_paren(code, args_open) {
                kernels.push(args_open..args_close);
            }
        }
    }
    if kernels.is_empty() {
        return;
    }
    let mut from = 0;
    while let Some(at) = lexer::find_word(code, from, "while") {
        from = at + 5;
        if in_ranges(tests, at) || !in_ranges(&kernels, at) {
            continue;
        }
        let Some(open) = header_body_open(code, at + 5) else {
            continue;
        };
        let Some(close) = lexer::matching_brace(code, open) else {
            continue;
        };
        if !consults(file, open + 1..close) {
            let (line, column) = file.line_col(at + 1);
            out.push(Diagnostic {
                rule: "unbounded-kernel-loop",
                file: file.path.clone(),
                line,
                column,
                message: "`while` inside a kernel closure without a governor consult: the \
                          cooperative-cancellation contract needs `ticker.tick(gov)` or a \
                          `gov.stopped()` probe in the loop body"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = lex("crates/sigmo-core/src/join.rs", src);
        let mut out = Vec::new();
        UnboundedKernelLoop.check(&f, &mut out);
        out
    }

    #[test]
    fn bare_loop_without_consult_is_flagged() {
        let d = run("fn dfs() {\n    loop {\n        step();\n    }\n}\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("tick"));
    }

    #[test]
    fn loop_with_tick_is_clean() {
        let d = run("fn dfs(gov: &Governor, ticker: &mut GovernorTicker) {\n    loop {\n        if ticker.tick(gov) { return; }\n        step();\n    }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn labeled_loop_is_still_a_loop() {
        let d =
            run("fn scan() {\n    'next: loop {\n        if done() { break 'next; }\n    }\n}\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn loop_with_stopped_probe_is_clean() {
        let d = run("fn f(gov: &Governor) {\n    loop {\n        if gov.stopped() { break; }\n        work();\n    }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn while_inside_kernel_closure_without_consult_is_flagged() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for_work_group_until(\"k\", \"join\", g, 4, 8, || gov.stopped(), |ctx| {\n        while frontier_grows() {\n            expand();\n        }\n    });\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("while"));
    }

    #[test]
    fn while_inside_kernel_closure_with_tick_is_clean() {
        let d = run(
            "fn launch(q: &Queue) {\n    q.parallel_for_until(\"k\", \"filter\", n, 128, || gov.stopped(), |i, c| {\n        while more(i) {\n            if ticker.tick(gov) { break; }\n            expand();\n        }\n    });\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn host_side_while_is_not_flagged() {
        // Query-plan construction runs once on the host; `while let` over a
        // draining queue is bounded and outside any kernel.
        let d = run(
            "fn build_plan(queue: &mut VecDeque<u32>) {\n    while let Some(v) = queue.pop_front() {\n        visit(v);\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_modules_are_skipped() {
        let d = run("#[cfg(test)]\nmod tests {\n    fn t() {\n        loop {\n            break;\n        }\n    }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn only_kernel_module_files_apply() {
        assert!(UnboundedKernelLoop.applies("crates/sigmo-core/src/join.rs"));
        assert!(UnboundedKernelLoop.applies("crates/sigmo-core/src/filter.rs"));
        assert!(!UnboundedKernelLoop.applies("crates/sigmo-core/src/candidates.rs"));
        assert!(!UnboundedKernelLoop.applies("crates/sigmo-device/src/queue.rs"));
    }
}
