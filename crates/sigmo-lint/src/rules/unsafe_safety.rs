//! **unsafe-requires-safety-comment** — the workspace is `unsafe`-free by
//! construction; lock that in.
//!
//! The CPU reproduction deliberately models device memory with safe Rust
//! (atomics + bitmap words) so that every claim in the counter model is
//! checkable without UB questions. Should a future PR genuinely need
//! `unsafe` (e.g. a SIMD intrinsic path), the block must carry a
//! `// SAFETY:` comment — on the same line or within the three preceding
//! comment lines — explaining the invariant that makes it sound.

use super::{Diagnostic, Rule, RuleCtx};
use crate::index::FileIndex;
use crate::lexer::{self, SourceFile};

/// See the module docs.
pub struct UnsafeSafety;

impl Rule for UnsafeSafety {
    fn name(&self) -> &'static str {
        "unsafe-requires-safety-comment"
    }

    fn description(&self) -> &'static str {
        "`unsafe` without an adjacent `// SAFETY:` comment (workspace is unsafe-free by design)"
    }

    fn check(&self, file: &FileIndex, _ctx: &RuleCtx, out: &mut Vec<Diagnostic>) {
        let file = &file.file;
        let code = &file.code;
        let mut from = 0;
        while let Some(at) = lexer::find_word(code, from, "unsafe") {
            from = at + "unsafe".len();
            let (line, column) = file.line_col(at);
            if has_safety_comment(file, line - 1) {
                continue;
            }
            out.push(Diagnostic {
                rule: "unsafe-requires-safety-comment",
                file: file.path.clone(),
                line,
                column,
                message: "`unsafe` without a `// SAFETY:` comment: this workspace is unsafe-free \
                          by design — justify the invariant in a SAFETY comment on or directly \
                          above this line"
                    .to_string(),
            });
        }
    }
}

/// True when line `n` (0-based) or one of the up-to-three comment lines
/// directly above it carries a `SAFETY:` marker.
fn has_safety_comment(file: &SourceFile, n: usize) -> bool {
    let marked = |line: &crate::lexer::Line| {
        line.comment
            .as_deref()
            .is_some_and(|c| c.contains("SAFETY:"))
    };
    if marked(&file.lines[n]) {
        return true;
    }
    let mut k = n;
    for _ in 0..3 {
        if k == 0 {
            return false;
        }
        k -= 1;
        let line = &file.lines[k];
        if !line.code.trim().is_empty() {
            return false; // intervening code breaks the association
        }
        if marked(line) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        crate::rules::run_rule(&UnsafeSafety, "crates/sigmo-core/src/candidates.rs", src)
    }

    #[test]
    fn bare_unsafe_is_flagged() {
        let d = run("fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn same_line_safety_comment_is_accepted() {
        let d = run("let v = unsafe { *p }; // SAFETY: p is checked non-null above\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn preceding_safety_comment_is_accepted() {
        let d = run("// SAFETY: idx < len is established by the bounds check\nlet v = unsafe { *ptr.add(idx) };\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn safety_comment_too_far_above_is_rejected() {
        let d = run("// SAFETY: stale\nlet a = 1;\nlet b = 2;\nlet v = unsafe { *p };\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let d = run("// unsafe would be wrong here\nlet s = \"unsafe\";\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn identifier_containing_unsafe_is_ignored() {
        let d = run("let unsafe_count = 0;\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
