//! `sigmo-lint` — a workspace invariant analyzer for the SIGMo
//! reproduction.
//!
//! The performance claims of this repo rest on discipline that `rustc`
//! cannot check: hot paths must scan candidate words rather than bits,
//! kernel atomics must stay relaxed, bitmap traffic must be charged to the
//! device counters, kernels must not allocate, and the workspace stays
//! `unsafe`-free. This crate encodes those invariants as deny-by-default
//! rules over a blanked lexical view of the source (no `syn` available in
//! the offline vendor set — the lexer is hand-rolled with 1:1 line/column
//! fidelity).
//!
//! Exceptions are spelled in the source as audited pragmas:
//!
//! ```text
//! // sigmo-lint: allow(per-bit-probe) — oracle path, differential test target
//! ```
//!
//! Unknown rule names in a pragma are themselves diagnostics, so a typo
//! cannot silently disable enforcement. The `sigmo-lint` binary walks the
//! workspace (skipping `vendor/`, `target/` and lint fixtures) and is wired
//! into `scripts/check.sh` as a fourth gate next to fmt/clippy/test.

pub mod lexer;
pub mod pragma;
pub mod rules;

use pragma::AllowSet;
use rules::{all_rules, Diagnostic};
use std::path::{Path, PathBuf};

/// Analyzes one file's source text, returning pragma-filtered diagnostics
/// sorted by position. `path` should be workspace-relative; rules match on
/// its file name.
pub fn analyze_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let file = lexer::lex(path, src);
    let pragmas = pragma::parse_pragmas(&file);
    let allow = AllowSet::build(&file, &pragmas);
    let known: Vec<&'static str> = all_rules().iter().map(|r| r.name()).collect();

    let mut out = Vec::new();
    for rule in all_rules() {
        if !rule.applies(path) {
            continue;
        }
        let mut found = Vec::new();
        rule.check(&file, &mut found);
        out.extend(
            found
                .into_iter()
                .filter(|d| !allow.allows(d.rule, d.line - 1)),
        );
    }
    // A pragma naming an unknown rule is a finding of its own: typos must
    // not silently disable enforcement.
    for p in &pragmas {
        for r in &p.rules {
            if !known.contains(&r.as_str()) {
                out.push(Diagnostic {
                    rule: "bad-pragma",
                    file: file.path.clone(),
                    line: p.line + 1,
                    column: 1,
                    message: format!(
                        "pragma allows unknown rule `{r}`: known rules are {}",
                        known.join(", ")
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (a.line, a.column, a.rule).cmp(&(b.line, b.column, b.rule)));
    // Nested range loops can flag the same probe site once per enclosing
    // loop; one diagnostic per (rule, site) is enough.
    out.dedup_by(|a, b| (a.rule, a.line, a.column) == (b.rule, b.line, b.column));
    out
}

/// All `.rs` files under `root` that the analyzer should see, sorted,
/// as paths relative to `root`. Skips the vendored dependency substitutes,
/// build output, VCS metadata, experiment results and the lint fixtures
/// (fixtures *must* violate rules; they are asserted on individually by
/// this crate's tests).
pub fn walk_workspace(root: &Path) -> Vec<PathBuf> {
    const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "results"];
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_path_buf());
                }
            }
        }
    }
    files.sort();
    files
}

/// Analyzes every workspace source file under `root`. Unreadable files are
/// reported as diagnostics rather than silently skipped.
pub fn analyze_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rel in walk_workspace(root) {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => out.extend(analyze_source(&rel_str, &src)),
            Err(e) => out.push(Diagnostic {
                rule: "io-error",
                file: rel_str,
                line: 0,
                column: 0,
                message: format!("cannot read file: {e}"),
            }),
        }
    }
    out
}

/// Renders diagnostics in the rustc-like human format.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&format!(
            "error[{}]: {}\n  --> {}:{}:{}\n",
            d.rule, d.message, d.file, d.line, d.column
        ));
    }
    if diags.is_empty() {
        s.push_str("sigmo-lint: no violations\n");
    } else {
        s.push_str(&format!(
            "sigmo-lint: {} violation{} found\n",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        ));
    }
    s
}

/// Renders diagnostics as a JSON array of objects with `rule`, `file`,
/// `line`, `column` and `message` fields. Hand-rendered: the workspace's
/// serde is a no-op vendor stub.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"rule\":{},\"file\":{},\"line\":{},\"column\":{},\"message\":{}}}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            d.column,
            json_str(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_pragma_suppresses_the_diagnostic() {
        let bad = "fn f() {\n    (lo..hi).find(|&c| bitmap.get(row, c))\n}\n";
        let allowed =
            "fn f() {\n    (lo..hi).find(|&c| bitmap.get(row, c)) // sigmo-lint: allow(per-bit-probe) — oracle\n}\n";
        assert_eq!(analyze_source("naive.rs", bad).len(), 1);
        assert!(analyze_source("naive.rs", allowed).is_empty());
    }

    #[test]
    fn unknown_rule_in_pragma_is_reported() {
        let src = "fn f() {} // sigmo-lint: allow(per-bit-prob) — typo\n";
        let d = analyze_source("naive.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad-pragma");
        assert!(d[0].message.contains("per-bit-prob"));
    }

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let src = "use std::sync::atomic::Ordering::SeqCst;\nfn f() {\n    for c in 0..n {\n        if b.get(r, c) { x(); }\n    }\n}\n";
        let d = analyze_source("filter.rs", src);
        assert!(d.len() >= 2);
        assert!(d.windows(2).all(|w| w[0].line <= w[1].line));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_renders_valid_array() {
        let d = vec![Diagnostic {
            rule: "per-bit-probe",
            file: "x.rs".into(),
            line: 3,
            column: 7,
            message: "msg".into(),
        }];
        let j = render_json(&d);
        assert!(j.starts_with('['));
        assert!(j.contains("\"rule\":\"per-bit-probe\""));
        assert!(j.contains("\"line\":3"));
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn human_render_counts_violations() {
        let d = vec![Diagnostic {
            rule: "alloc-in-kernel",
            file: "x.rs".into(),
            line: 1,
            column: 1,
            message: "msg".into(),
        }];
        let h = render_human(&d);
        assert!(h.contains("error[alloc-in-kernel]"));
        assert!(h.contains("x.rs:1:1"));
        assert!(h.contains("1 violation found"));
        assert!(render_human(&[]).contains("no violations"));
    }
}
