//! `sigmo-lint` — a workspace invariant analyzer for the SIGMo
//! reproduction.
//!
//! The performance and reproducibility claims of this repo rest on
//! discipline that `rustc` cannot check: hot paths must scan candidate
//! words rather than bits, kernel atomics must stay relaxed, bitmap
//! traffic must be charged to the device counters, kernels must not
//! allocate, results must be bit-identical across thread counts, and the
//! workspace stays `unsafe`-free. This crate encodes those invariants as
//! deny-by-default rules over a blanked lexical view of the source (no
//! `syn` available in the offline vendor set — the lexer is hand-rolled
//! with 1:1 line/column fidelity).
//!
//! Since PR 7 the analysis is *interprocedural*: every file is indexed
//! ([`index`]), lexical call edges are resolved workspace-wide
//! ([`callgraph`]), and the kernel/report reachability sets ([`reach`])
//! decide which code each rule interrogates — a per-bit probe is a
//! violation wherever it is reachable from a `parallel_for` closure, not
//! just in a hard-coded list of kernel files.
//!
//! Exceptions are spelled in the source as audited pragmas:
//!
//! ```text
//! // sigmo-lint: allow(per-bit-probe) — oracle path, differential test target
//! ```
//!
//! Unknown rule names and malformed pragmas are themselves diagnostics,
//! so a typo cannot silently disable enforcement; determinism-family
//! rules additionally require the pragma to carry a written justification
//! (at least [`MIN_JUSTIFICATION`] characters after the allow list). The
//! `sigmo-lint` binary walks the workspace (skipping `vendor/`, `target/`
//! and lint fixtures) and is wired into `scripts/check.sh` as a gate next
//! to fmt/clippy/test.

pub mod callgraph;
pub mod index;
pub mod lexer;
pub mod pragma;
pub mod reach;
pub mod rules;

use callgraph::CallGraph;
use index::Workspace;
use pragma::AllowSet;
use reach::Reach;
use rules::{all_rules, Diagnostic, RuleCtx};
use std::path::{Path, PathBuf};

/// Minimum length of a written justification on a pragma suppressing a
/// determinism rule. Short enough for "display-only", long enough that
/// "ok" does not count as an audit trail.
pub const MIN_JUSTIFICATION: usize = 8;

/// Analyzes a set of `(path, source)` pairs as one workspace: index, call
/// graph, reachability, rules, pragma filtering and pragma
/// meta-diagnostics. Diagnostics come back sorted by (file, line, column,
/// rule).
pub fn analyze_sources<I, P, S>(sources: I) -> Vec<Diagnostic>
where
    I: IntoIterator<Item = (P, S)>,
    P: AsRef<str>,
    S: AsRef<str>,
{
    analyze_indexed(&Workspace::from_sources(sources))
}

/// Analyzes one file's source text — a one-file workspace, so
/// intra-file reachability (a launch closure calling a helper below it)
/// still gates the rules. `path` should be workspace-relative.
pub fn analyze_source(path: &str, src: &str) -> Vec<Diagnostic> {
    analyze_sources([(path, src)])
}

/// The full pipeline over an indexed workspace.
pub fn analyze_indexed(ws: &Workspace) -> Vec<Diagnostic> {
    let rules = all_rules();
    let known: Vec<&'static str> = rules.iter().map(|r| r.name()).collect();
    let cg = CallGraph::build(ws);
    let reach = Reach::compute(ws, &cg);

    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let ctx = RuleCtx {
            kernel: reach.kernel_ranges(ws, fi),
            report: reach.report_ranges(ws, fi),
        };
        let pragmas = pragma::parse_pragmas(&file.file);
        let allow = AllowSet::build(&file.file, &pragmas);
        for rule in &rules {
            let mut found = Vec::new();
            rule.check(file, &ctx, &mut found);
            out.extend(
                found
                    .into_iter()
                    .filter(|d| !allow.allows(d.rule, d.line - 1)),
            );
        }
        // Pragma meta-diagnostics: malformed pragmas, unknown rule names,
        // and unjustified suppressions of determinism rules. Typos and
        // shortcuts must not silently disable enforcement.
        for p in &pragmas {
            if p.malformed {
                out.push(Diagnostic {
                    rule: "bad-pragma",
                    file: file.file.path.clone(),
                    line: p.line + 1,
                    column: 1,
                    message: "malformed pragma: expected `allow(rule, ...)` with a closed \
                              parenthesis — nothing is suppressed"
                        .into(),
                });
                continue;
            }
            for r in &p.rules {
                let Some(rule) = rules.iter().find(|rule| rule.name() == r.as_str()) else {
                    out.push(Diagnostic {
                        rule: "bad-pragma",
                        file: file.file.path.clone(),
                        line: p.line + 1,
                        column: 1,
                        message: format!(
                            "pragma allows unknown rule `{r}`: known rules are {}",
                            known.join(", ")
                        ),
                    });
                    continue;
                };
                let justified = p
                    .justification
                    .as_deref()
                    .is_some_and(|j| j.len() >= MIN_JUSTIFICATION);
                if rule.requires_justification() && !justified {
                    out.push(Diagnostic {
                        rule: "unjustified-pragma",
                        file: file.file.path.clone(),
                        line: p.line + 1,
                        column: 1,
                        message: format!(
                            "suppressing determinism rule `{r}` requires a written justification \
                             after the allow list (≥ {MIN_JUSTIFICATION} chars): say what makes \
                             this site sound",
                        ),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
    });
    // Nested range loops or overlapping context ranges can flag the same
    // site more than once; one diagnostic per (rule, site) is enough.
    out.dedup_by(|a, b| (a.rule, &a.file, a.line, a.column) == (b.rule, &b.file, b.line, b.column));
    out
}

/// All `.rs` files under `root` that the analyzer should see, sorted,
/// as paths relative to `root`. Skips the vendored dependency substitutes,
/// build output, VCS metadata, experiment results and the lint fixtures
/// (fixtures *must* violate rules; they are asserted on individually by
/// this crate's tests).
pub fn walk_workspace(root: &Path) -> Vec<PathBuf> {
    const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "results"];
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_path_buf());
                }
            }
        }
    }
    files.sort();
    files
}

/// Analyzes every workspace source file under `root`. Unreadable files are
/// reported as diagnostics rather than silently skipped.
pub fn analyze_workspace(root: &Path) -> Vec<Diagnostic> {
    let (ws, errors) = Workspace::load(root);
    let mut out = analyze_indexed(&ws);
    for (path, err) in errors {
        out.push(Diagnostic {
            rule: "io-error",
            file: path,
            line: 0,
            column: 0,
            message: format!("cannot read file: {err}"),
        });
    }
    out
}

/// Renders diagnostics in the rustc-like human format.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&format!(
            "error[{}]: {}\n  --> {}:{}:{}\n",
            d.rule, d.message, d.file, d.line, d.column
        ));
    }
    if diags.is_empty() {
        s.push_str("sigmo-lint: no violations\n");
    } else {
        s.push_str(&format!(
            "sigmo-lint: {} violation{} found\n",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        ));
    }
    s
}

/// Renders diagnostics as a JSON array of objects with `rule`, `file`,
/// `line`, `column` and `message` fields. Hand-rendered: the workspace's
/// serde is a no-op vendor stub.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"rule\":{},\"file\":{},\"line\":{},\"column\":{},\"message\":{}}}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            d.column,
            json_str(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Renders diagnostics as a minimal SARIF 2.1.0 log — one run, one
/// result per diagnostic, rule metadata from the registry — so CI
/// systems can annotate findings on changed lines. Hand-rendered like
/// [`render_json`].
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [{\n");
    s.push_str("    \"tool\": {\"driver\": {\"name\": \"sigmo-lint\", \"rules\": [");
    // Registry rules plus the meta-rules the driver itself emits.
    let rules = all_rules();
    let metas: &[(&str, &str)] = &[
        (
            "bad-pragma",
            "malformed pragma or unknown rule name in an allow list",
        ),
        (
            "unjustified-pragma",
            "determinism-rule suppression without a written justification",
        ),
        ("io-error", "workspace file could not be read"),
    ];
    let mut first = true;
    for (id, desc) in rules
        .iter()
        .map(|r| (r.name(), r.description()))
        .chain(metas.iter().copied())
    {
        if !first {
            s.push_str(", ");
        }
        first = false;
        s.push_str(&format!(
            "{{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(id),
            json_str(desc)
        ));
    }
    s.push_str("]}},\n");
    s.push_str("    \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            json_str(d.rule),
            json_str(&d.message),
            json_str(&d.file),
            d.line.max(1),
            d.column.max(1),
        ));
    }
    if !diags.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("]\n  }]\n}\n");
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A probing helper made kernel-reachable by a launch in the same
    /// source.
    const REACHABLE_PROBE: &str = "\
fn host(q: &Queue) {
    q.parallel_for(\"k\", \"scan\", n, 128, |i, c| { f(i, c); });
}
fn f(i: usize, c: &K) {
    c.add_word_reads(1);
    (lo..hi).find(|&c| bitmap.get(row, c));
}
";

    #[test]
    fn trailing_pragma_suppresses_the_diagnostic() {
        let allowed = REACHABLE_PROBE.replace(
            "(lo..hi).find(|&c| bitmap.get(row, c));",
            "(lo..hi).find(|&c| bitmap.get(row, c)); // sigmo-lint: allow(per-bit-probe) — oracle",
        );
        assert_eq!(analyze_source("naive.rs", REACHABLE_PROBE).len(), 1);
        assert!(analyze_source("naive.rs", &allowed).is_empty());
    }

    #[test]
    fn unknown_rule_in_pragma_is_reported() {
        let src = "fn f() {} // sigmo-lint: allow(per-bit-prob) — typo\n";
        let d = analyze_source("naive.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad-pragma");
        assert!(d[0].message.contains("per-bit-prob"));
    }

    #[test]
    fn malformed_pragma_is_reported() {
        let src = "fn f() {} // sigmo-lint: allow(per-bit-probe";
        let d = analyze_source("naive.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad-pragma");
        assert!(d[0].message.contains("malformed"));
    }

    #[test]
    fn determinism_pragma_without_justification_is_reported() {
        let src = "\
fn merge(counts: &HashMap<u32, u64>) -> RunReport {
    // sigmo-lint: allow(nondet-collection-iter)
    let total = counts.values().sum();
    RunReport { total }
}
";
        let d = analyze_source("merge.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "unjustified-pragma");
        // With a justification the suppression is accepted silently.
        let ok = src.replace(
            "allow(nondet-collection-iter)",
            "allow(nondet-collection-iter) — values feed a commutative integer sum",
        );
        assert!(analyze_source("merge.rs", &ok).is_empty());
    }

    #[test]
    fn kernel_discipline_pragmas_do_not_need_justification() {
        let allowed = REACHABLE_PROBE.replace(
            "(lo..hi).find(|&c| bitmap.get(row, c));",
            "(lo..hi).find(|&c| bitmap.get(row, c)); // sigmo-lint: allow(per-bit-probe)",
        );
        assert!(analyze_source("naive.rs", &allowed).is_empty());
    }

    #[test]
    fn cross_file_reachability_gates_rules() {
        let launcher = "\
use b::util::helper;
fn host(q: &Queue) {
    q.parallel_for(\"k\", \"scan\", n, 128, |i, c| { helper(i, c); });
}
";
        let helper = "\
fn helper(i: usize, c: &K) {
    let s = i.to_string();
    c.add_instructions(s.len() as u64);
}
";
        let d = analyze_sources([
            ("crates/a/src/launch.rs", launcher),
            ("crates/b/src/util.rs", helper),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "alloc-in-kernel");
        assert_eq!(d[0].file, "crates/b/src/util.rs");
        // Without the launcher, the same helper is host-only and clean.
        assert!(analyze_source("crates/b/src/util.rs", helper).is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let src = format!("use std::sync::atomic::Ordering::SeqCst;\n{REACHABLE_PROBE}");
        let d = analyze_source("filter.rs", &src);
        assert!(d.len() >= 2, "{d:?}");
        assert!(d.windows(2).all(|w| w[0].line <= w[1].line));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_renders_valid_array() {
        let d = vec![Diagnostic {
            rule: "per-bit-probe",
            file: "x.rs".into(),
            line: 3,
            column: 7,
            message: "msg".into(),
        }];
        let j = render_json(&d);
        assert!(j.starts_with('['));
        assert!(j.contains("\"rule\":\"per-bit-probe\""));
        assert!(j.contains("\"line\":3"));
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn human_render_counts_violations() {
        let d = vec![Diagnostic {
            rule: "alloc-in-kernel",
            file: "x.rs".into(),
            line: 1,
            column: 1,
            message: "msg".into(),
        }];
        let h = render_human(&d);
        assert!(h.contains("error[alloc-in-kernel]"));
        assert!(h.contains("x.rs:1:1"));
        assert!(h.contains("1 violation found"));
        assert!(render_human(&[]).contains("no violations"));
    }

    #[test]
    fn sarif_lists_rules_and_results() {
        let d = vec![Diagnostic {
            rule: "nondet-collection-iter",
            file: "crates/a/src/x.rs".into(),
            line: 12,
            column: 5,
            message: "iteration order".into(),
        }];
        let s = render_sarif(&d);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"sigmo-lint\""));
        assert!(s.contains("\"ruleId\": \"nondet-collection-iter\""));
        assert!(s.contains("\"startLine\": 12"));
        // Every registry rule is described in the tool metadata.
        for rule in all_rules() {
            assert!(s.contains(rule.name()), "missing {}", rule.name());
        }
        // Empty runs still render a well-formed log.
        let empty = render_sarif(&[]);
        assert!(empty.contains("\"results\": []"));
    }
}
