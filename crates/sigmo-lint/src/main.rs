//! The `sigmo-lint` binary: walks the workspace (or explicit files) and
//! reports kernel-discipline and determinism violations.
//!
//! ```text
//! sigmo-lint [--root DIR] [--format human|json|sarif] [--list-rules] [FILE...]
//! ```
//!
//! Exit status (stable contract — `scripts/check.sh` and CI depend on it):
//!
//! * `0` — analysis ran and found no violations;
//! * `1` — analysis ran and found at least one violation (any format);
//! * `2` — the analysis did not run: usage error, unknown flag/format,
//!   or an explicitly named file could not be read. (Unreadable files
//!   discovered during a `--root` walk are reported as `io-error`
//!   diagnostics and exit 1, so a transient read failure cannot pass
//!   the gate.)

use sigmo_lint::rules::all_rules;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "sigmo-lint [--root DIR] [--format human|json|sarif] [--list-rules] [FILE...]";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    return usage("--root requires a directory");
                };
                root = PathBuf::from(dir);
            }
            "--format" => {
                let Some(f) = args.next() else {
                    return usage("--format requires `human`, `json` or `sarif`");
                };
                format = match f.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return usage(&format!("unknown format `{other}`")),
                };
            }
            "--list-rules" => {
                for rule in all_rules() {
                    println!("{:<32} {}", rule.name(), rule.description());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                println!();
                println!("exit status: 0 clean, 1 violations found, 2 usage or I/O error");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag `{flag}`"));
            }
            file => files.push(file.to_string()),
        }
    }

    let diags = if files.is_empty() {
        sigmo_lint::analyze_workspace(&root)
    } else {
        // Explicit files are analyzed together as one mini-workspace, so
        // cross-file reachability between the named files still applies.
        let mut sources = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(src) => sources.push((f.clone(), src)),
                Err(e) => {
                    eprintln!("sigmo-lint: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        sigmo_lint::analyze_sources(sources)
    };

    match format {
        Format::Human => print!("{}", sigmo_lint::render_human(&diags)),
        Format::Json => print!("{}", sigmo_lint::render_json(&diags)),
        Format::Sarif => print!("{}", sigmo_lint::render_sarif(&diags)),
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Format {
    Human,
    Json,
    Sarif,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sigmo-lint: {msg}");
    eprintln!("usage: {USAGE}");
    ExitCode::from(2)
}
