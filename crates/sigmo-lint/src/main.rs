//! The `sigmo-lint` binary: walks the workspace (or explicit files) and
//! reports kernel-discipline violations.
//!
//! ```text
//! sigmo-lint [--root DIR] [--format human|json] [--list-rules] [FILE...]
//! ```
//!
//! Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

use sigmo_lint::rules::all_rules;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    return usage("--root requires a directory");
                };
                root = PathBuf::from(dir);
            }
            "--format" => {
                let Some(f) = args.next() else {
                    return usage("--format requires `human` or `json`");
                };
                format = match f.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return usage(&format!("unknown format `{other}`")),
                };
            }
            "--list-rules" => {
                for rule in all_rules() {
                    println!("{:<32} {}", rule.name(), rule.description());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("sigmo-lint [--root DIR] [--format human|json] [--list-rules] [FILE...]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag `{flag}`"));
            }
            file => files.push(file.to_string()),
        }
    }

    let diags = if files.is_empty() {
        sigmo_lint::analyze_workspace(&root)
    } else {
        let mut out = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(src) => out.extend(sigmo_lint::analyze_source(f, &src)),
                Err(e) => {
                    eprintln!("sigmo-lint: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        out
    };

    match format {
        Format::Human => print!("{}", sigmo_lint::render_human(&diags)),
        Format::Json => print!("{}", sigmo_lint::render_json(&diags)),
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Format {
    Human,
    Json,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sigmo-lint: {msg}");
    eprintln!("usage: sigmo-lint [--root DIR] [--format human|json] [--list-rules] [FILE...]");
    ExitCode::from(2)
}
