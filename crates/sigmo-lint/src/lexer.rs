//! A minimal Rust lexer: separates code from comments and blanks literal
//! bodies, preserving byte columns exactly.
//!
//! The analyzer's rules are line/scope scanners, not parsers — they only
//! need to see *code* tokens (so a `".get("` inside a string or comment is
//! never a probe) and *comments* (so pragmas and `// SAFETY:` markers can
//! be read). This module produces both views with 1:1 column fidelity:
//! every comment byte and every string/char-literal body byte is replaced
//! by a space in the code view, so byte offsets in the code view are byte
//! offsets in the original file.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`, any hash count), byte and
//! byte-raw strings, char and byte-char literals, and the lifetime/label
//! ambiguity of `'` (`'a`, `'next: loop`).

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comments and literal bodies blanked to spaces.
    pub code: String,
    /// Comment text on this line (markers stripped, trimmed), if any.
    pub comment: Option<String>,
}

/// A lexed source file plus the concatenated code view.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Per-line split views.
    pub lines: Vec<Line>,
    /// All code lines joined with `\n`; columns match the original file.
    pub code: String,
    /// Byte offset in `code` where each line begins.
    pub line_starts: Vec<usize>,
}

impl SourceFile {
    /// Maps a byte offset in [`SourceFile::code`] to 1-based (line, column).
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// 0-based line index of a byte offset in [`SourceFile::code`].
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_col(offset).0 - 1
    }

    /// Byte ranges of `code` covered by `#[cfg(test)]` items (the test
    /// modules / functions the kernel-discipline rules skip).
    pub fn test_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(at) = self.code[from..].find("#[cfg(test)]") {
            let start = from + at;
            let after = start + "#[cfg(test)]".len();
            // The attribute guards the next item: the first `{` opens its
            // body (mod or fn); a `;` first means an out-of-line module.
            match first_of(&self.code, after, &['{', ';']) {
                Some((i, '{')) => {
                    let end = matching_brace(&self.code, i).unwrap_or(self.code.len());
                    out.push(start..end + 1);
                    from = end + 1;
                }
                Some((i, _)) => from = i + 1,
                None => break,
            }
        }
        out
    }
}

fn first_of(code: &str, from: usize, needles: &[char]) -> Option<(usize, char)> {
    code[from..]
        .char_indices()
        .find(|(_, c)| needles.contains(c))
        .map(|(i, c)| (from + i, c))
}

/// Given the offset of a `{` in blanked code, returns the offset of its
/// matching `}`.
pub fn matching_brace(code: &str, open: usize) -> Option<usize> {
    debug_assert_eq!(code.as_bytes()[open], b'{');
    matching_delim(code, open, b'{', b'}')
}

/// Given the offset of a `(` in blanked code, returns the offset of its
/// matching `)`.
pub fn matching_paren(code: &str, open: usize) -> Option<usize> {
    debug_assert_eq!(code.as_bytes()[open], b'(');
    matching_delim(code, open, b'(', b')')
}

fn matching_delim(code: &str, open: usize, o: u8, c: u8) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == o {
            depth += 1;
        } else if b == c {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// True for bytes that continue an identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds the next whole-word occurrence of `word` at or after `from`.
pub fn find_word(code: &str, from: usize, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut at = from;
    while let Some(rel) = code[at..].find(word) {
        let i = at + rel;
        let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
        let after = i + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(i);
        }
        at = i + word.len();
    }
    None
}

/// All identifiers in a code snippet (keywords included; callers filter).
pub fn idents(code: &str) -> Vec<&str> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) && !bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push(&code[start..i]);
        } else {
            i += 1;
        }
    }
    out
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(usize),
    Str,
    RawStr(usize),
}

/// Lexes `text` into code and comment views. `path` is recorded verbatim.
pub fn lex(path: &str, text: &str) -> SourceFile {
    let bytes = text.as_bytes();
    let mut lines = Vec::new();
    // Byte buffers, not `String`s: the input is valid UTF-8 and every
    // replacement is whole-char (a multi-byte char never starts a state
    // transition, which all trigger on ASCII bytes), so pushing raw bytes
    // keeps multi-byte text intact *and* byte columns exact — `b as char`
    // would re-encode bytes ≥ 0x80 and drift every following column.
    let mut code_buf: Vec<u8> = Vec::new();
    let mut comment_buf: Vec<u8> = Vec::new();
    let mut state = State::Code;
    let mut i = 0;

    macro_rules! flush_line {
        () => {{
            let code = String::from_utf8_lossy(&code_buf).into_owned();
            let comment = String::from_utf8_lossy(&comment_buf);
            let comment = comment.trim();
            lines.push(Line {
                code,
                comment: if comment.is_empty() {
                    None
                } else {
                    Some(comment.to_string())
                },
            });
            code_buf.clear();
            comment_buf.clear();
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    code_buf.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    code_buf.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    code_buf.push(b'"');
                    i += 1;
                } else if b == b'r' || b == b'b' {
                    // Possible raw / byte string or byte char; also plain
                    // identifiers starting with r/b. Only treat as a
                    // literal prefix when not continuing an identifier.
                    let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
                    if !prev_ident {
                        if let Some((kind, consumed)) = literal_prefix(bytes, i) {
                            for _ in 0..consumed {
                                code_buf.push(b' ');
                            }
                            // Re-surface the delimiting quote for clarity.
                            code_buf.pop();
                            code_buf.push(b'"');
                            state = kind;
                            i += consumed;
                            continue;
                        }
                    }
                    code_buf.push(b);
                    i += 1;
                } else if b == b'\'' {
                    // Char literal vs lifetime/loop label. A char
                    // literal never spans a newline, so a quote whose
                    // body would cross one (or run off the file) is
                    // treated as a lone quote — keeping every line's
                    // byte count intact even on malformed input.
                    let next = bytes.get(i + 1).copied();
                    let is_char = match next {
                        Some(b'\\') => true,
                        Some(b'\n') | None => false,
                        Some(c) if c >= 0x80 => {
                            // Multi-byte contents: the closing quote sits
                            // after the whole UTF-8 sequence, not at i+2.
                            let len = utf8_len(c);
                            bytes.get(i + 1 + len) == Some(&b'\'')
                        }
                        Some(_) => bytes.get(i + 2) == Some(&b'\''),
                    };
                    let end = if is_char {
                        char_literal_end(bytes, i)
                    } else {
                        None
                    };
                    match end {
                        Some(end) => {
                            // Blank the quotes too: a quote left beside a
                            // blanked body (`'  '`) would pair with later
                            // text if the view were ever re-scanned, and
                            // no rule keys on char-literal delimiters.
                            for _ in i..=end {
                                code_buf.push(b' ');
                            }
                            i = end + 1;
                        }
                        None => {
                            code_buf.push(b'\'');
                            i += 1;
                        }
                    }
                } else {
                    code_buf.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_buf.push(b);
                code_buf.push(b' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    code_buf.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    comment_buf.extend_from_slice(b"/*");
                    code_buf.extend_from_slice(b"  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    comment_buf.push(b);
                    code_buf.push(b' ');
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    if bytes.get(i + 1) == Some(&b'\n') {
                        // Line-continuation escape: let the newline branch
                        // flush the line so offsets stay aligned.
                        code_buf.push(b' ');
                        i += 1;
                    } else {
                        code_buf.extend_from_slice(b"  ");
                        i += 2;
                    }
                } else if b == b'"' {
                    code_buf.push(b'"');
                    state = State::Code;
                    i += 1;
                } else {
                    code_buf.push(b' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && raw_str_closes(bytes, i, hashes) {
                    code_buf.push(b'"');
                    for _ in 0..hashes {
                        code_buf.push(b' ');
                    }
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    code_buf.push(b' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment || !code_buf.is_empty() || !comment_buf.is_empty() {
        flush_line!();
    }
    if lines.is_empty() {
        lines.push(Line {
            code: String::new(),
            comment: None,
        });
    }

    let mut code = String::new();
    let mut line_starts = Vec::with_capacity(lines.len());
    for (n, line) in lines.iter().enumerate() {
        line_starts.push(code.len());
        code.push_str(&line.code);
        if n + 1 < lines.len() {
            code.push('\n');
        }
    }
    SourceFile {
        path: path.to_string(),
        lines,
        code,
        line_starts,
    }
}

/// Detects `b"`, `r"`, `r#"`, `br"`, `br#"` prefixes at `i`. Returns the
/// state to enter and the bytes consumed through the opening quote. A
/// byte-char literal `b'x'` returns `None` so the `'` path handles it.
fn literal_prefix(bytes: &[u8], i: usize) -> Option<(State, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            return None;
        }
    }
    if bytes.get(j) == Some(&b'"') {
        return Some((State::Str, j + 1 - i));
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        let mut hashes = 0;
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if bytes.get(j) == Some(&b'"') {
            return Some((State::RawStr(hashes), j + 1 - i));
        }
    }
    None
}

fn raw_str_closes(bytes: &[u8], quote: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(quote + k) == Some(&b'#'))
}

/// End offset (of the closing `'`) of a char literal starting at `open`,
/// or `None` if a newline or end-of-input arrives first — the caller
/// falls back to a lone quote so line/byte alignment survives malformed
/// literals.
fn char_literal_end(bytes: &[u8], open: usize) -> Option<usize> {
    let mut i = open + 1;
    while i < bytes.len() && bytes[i] != b'\n' {
        if bytes[i] == b'\\' {
            if bytes.get(i + 1) == Some(&b'\n') {
                return None;
            }
            i += 2;
        } else if bytes[i] == b'\'' {
            return Some(i);
        } else {
            i += 1;
        }
    }
    None
}

/// Byte length of the UTF-8 character starting with `first` (≥ 0x80).
fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_captured() {
        let f = lex("x.rs", "let a = 1; // set a\nlet b = 2;\n");
        assert_eq!(f.lines[0].code, "let a = 1;         ");
        assert_eq!(f.lines[0].comment.as_deref(), Some("set a"));
        assert_eq!(f.lines[1].comment, None);
    }

    #[test]
    fn strings_keep_quotes_blank_bodies() {
        let f = lex("x.rs", r#"call("a.get(b) { }", 2);"#);
        assert!(!f.code.contains(".get("));
        assert!(!f.code.contains('{'));
        assert_eq!(f.code.len(), r#"call("a.get(b) { }", 2);"#.len());
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let f = lex("x.rs", r#"let s = "a\"b.get(c)"; x();"#);
        assert!(!f.code.contains(".get("));
        assert!(f.code.contains("x();"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = lex("x.rs", "let s = r#\"json {}.get() \"# ; y();");
        assert!(!f.code.contains(".get("));
        assert!(f.code.contains("y();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = lex("x.rs", "let c = '{'; 'outer: loop { break 'outer; }");
        // The brace inside the char literal is blanked; the loop braces
        // survive; the label keeps its tick.
        assert_eq!(f.code.matches('{').count(), 1);
        assert!(f.code.contains("'outer: loop"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = lex("x.rs", "a(); /* one /* two */ still */ b();\nc();");
        assert!(f.lines[0].code.contains("a();"));
        assert!(f.lines[0].code.contains("b();"));
        assert!(!f.lines[0].code.contains("two"));
        assert!(f.lines[1].code.contains("c();"));
    }

    #[test]
    fn line_col_round_trip() {
        let f = lex("x.rs", "ab\ncdef\ng");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(6), (2, 4));
        assert_eq!(f.line_col(8), (3, 1));
    }

    #[test]
    fn matching_delims() {
        let code = "fn f(a: u32) { if x { y(); } }";
        let open = code.find('{').unwrap();
        assert_eq!(matching_brace(code, open), Some(code.len() - 1));
        let paren = code.find('(').unwrap();
        assert_eq!(matching_paren(code, paren), Some(code.find(')').unwrap()));
    }

    #[test]
    fn find_word_respects_boundaries() {
        let code = "balloon for loop for_each for";
        assert_eq!(find_word(code, 0, "for"), Some(8));
        assert_eq!(find_word(code, 9, "for"), Some(code.len() - 3));
        assert_eq!(find_word(code, 0, "loo"), None);
    }

    #[test]
    fn test_ranges_cover_cfg_test_mods() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { probe(); }\n}\nfn b() {}\n";
        let f = lex("x.rs", src);
        let ranges = f.test_ranges();
        assert_eq!(ranges.len(), 1);
        let probe = f.code.find("probe").unwrap();
        assert!(ranges[0].contains(&probe));
        let b = f.code.find("fn b").unwrap();
        assert!(!ranges[0].contains(&b));
    }

    #[test]
    fn idents_extracts_words() {
        assert_eq!(
            idents("foo.bar(q as usize, d)"),
            ["foo", "bar", "q", "as", "usize", "d"]
        );
    }
}
