//! Kernel- and report-reachability over the lexical call graph.
//!
//! Two sets of functions define the determinism audit surface:
//!
//! * **kernel-reachable** — functions transitively callable from a
//!   kernel-launch closure (`Queue::parallel_for*`). This is the code
//!   that executes concurrently: scheduling order must not be observable
//!   in anything it computes. The kernel-discipline rules (per-bit
//!   probes, allocations, uncharged traffic, unbounded loops) apply
//!   here — *wherever* the function lives, not just in a hard-coded list
//!   of kernel module files.
//!
//! * **report-reachable** — functions that construct result reports
//!   ([`REPORT_TYPES`]: `RunReport`, `StreamReport`, kernel records,
//!   counter snapshots/merges — any `…Report` struct counts), plus
//!   everything they transitively call. This is the code whose outputs
//!   the repo pins bit-identical across thread counts; nondeterministic
//!   iteration, float accumulation, racy reads and wall-clock values
//!   must not leak into it unjustified.
//!
//! Kernel reachability is a *backward-from-execution-context* closure
//! (seeded by names called inside launch closures); report reachability
//! is a *forward-from-construction* closure (a report builder's callees
//! all feed the report). Both propagate through the name-resolved call
//! graph, so the sets are over-approximations — the audit's escape hatch
//! for a justified false positive is a pragma with a written rationale.

use crate::callgraph::CallGraph;
use crate::index::Workspace;
use crate::lexer;
use std::collections::BTreeSet;
use std::ops::Range;

/// Type names whose construction marks a function as a report root.
/// `KernelRecord` and `CounterSnapshot` carry the counter totals the
/// determinism tests key on; `KernelSummary` aggregates them;
/// `StrategyCounts` is the per-pair decision tally merged across chunks.
/// Any identifier ending in `Report` is also a root marker.
pub const REPORT_TYPES: &[&str] = &[
    "KernelRecord",
    "CounterSnapshot",
    "KernelSummary",
    "StrategyCounts",
];

/// The computed reachability sets.
#[derive(Debug, Default)]
pub struct Reach {
    /// Per file: fn indices that are kernel-reachable.
    pub kernel: Vec<BTreeSet<usize>>,
    /// Per file: fn indices that are report-reachable (roots included).
    pub report: Vec<BTreeSet<usize>>,
}

impl Reach {
    /// Computes both reachability sets for an indexed workspace.
    pub fn compute(ws: &Workspace, cg: &CallGraph) -> Self {
        let kernel = closure_from_names(
            ws,
            cg,
            cg.kernel_seed_names
                .iter()
                .enumerate()
                .flat_map(|(fi, names)| names.iter().map(move |n| (fi, n.as_str()))),
        );
        let roots = report_roots(ws);
        let report = closure_from_nodes(ws, cg, roots);
        Reach { kernel, report }
    }

    /// Kernel-context byte ranges of file `fi`: launch closure bodies
    /// plus the bodies of kernel-reachable fns. Empty for context-exempt
    /// files.
    pub fn kernel_ranges(&self, ws: &Workspace, fi: usize) -> Vec<Range<usize>> {
        let file = &ws.files[fi];
        if file.context_exempt {
            return Vec::new();
        }
        let mut out = file.kernel_closures.clone();
        out.extend(self.kernel[fi].iter().map(|&ni| file.fns[ni].body.clone()));
        out.sort_by_key(|r| r.start);
        out
    }

    /// Report-context byte ranges of file `fi`: bodies of
    /// report-reachable fns. Empty for context-exempt files.
    pub fn report_ranges(&self, ws: &Workspace, fi: usize) -> Vec<Range<usize>> {
        let file = &ws.files[fi];
        if file.context_exempt {
            return Vec::new();
        }
        let mut out: Vec<Range<usize>> = self.report[fi]
            .iter()
            .map(|&ni| file.fns[ni].body.clone())
            .collect();
        out.sort_by_key(|r| r.start);
        out
    }
}

/// Fns that construct or manipulate a report type (see [`REPORT_TYPES`]):
/// the roots of report reachability. Test code and context-exempt files
/// never root the audit surface.
fn report_roots(ws: &Workspace) -> Vec<(usize, usize)> {
    let mut roots = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.context_exempt {
            continue;
        }
        for (ni, item) in file.fns.iter().enumerate() {
            if crate::rules::in_ranges(&file.tests, item.at) {
                continue;
            }
            if mentions_report_type(&file.file.code, item.body.clone()) {
                roots.push((fi, ni));
            }
        }
    }
    roots
}

/// True when `range` of the blanked code mentions a report type as a
/// whole word (construction, `Default::default()` binding, or merge —
/// any manipulation marks the fn).
pub fn mentions_report_type(code: &str, range: Range<usize>) -> bool {
    let slice = &code[range];
    for ty in REPORT_TYPES {
        if lexer::find_word(slice, 0, ty).is_some() {
            return true;
        }
    }
    // Any `…Report` identifier: scan idents once.
    lexer::idents(slice)
        .iter()
        .any(|w| w.len() > "Report".len() && w.ends_with("Report"))
}

/// Transitive closure from `(file, callee-name)` seeds.
fn closure_from_names<'a, I>(ws: &Workspace, cg: &CallGraph, seeds: I) -> Vec<BTreeSet<usize>>
where
    I: Iterator<Item = (usize, &'a str)>,
{
    let mut marked: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ws.files.len()];
    let mut work: Vec<(usize, usize)> = Vec::new();
    for (fi, name) in seeds {
        for node in cg.resolve(name, fi) {
            push_node(ws, &mut marked, &mut work, node);
        }
    }
    propagate(ws, cg, marked, work)
}

/// Transitive closure from explicit root nodes.
fn closure_from_nodes(
    ws: &Workspace,
    cg: &CallGraph,
    roots: Vec<(usize, usize)>,
) -> Vec<BTreeSet<usize>> {
    let mut marked: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ws.files.len()];
    let mut work: Vec<(usize, usize)> = Vec::new();
    for node in roots {
        push_node(ws, &mut marked, &mut work, node);
    }
    propagate(ws, cg, marked, work)
}

fn push_node(
    ws: &Workspace,
    marked: &mut [BTreeSet<usize>],
    work: &mut Vec<(usize, usize)>,
    (fi, ni): (usize, usize),
) {
    // Context-exempt files carry no audit context even when reachable.
    if ws.files[fi].context_exempt {
        return;
    }
    if marked[fi].insert(ni) {
        work.push((fi, ni));
    }
}

fn propagate(
    ws: &Workspace,
    cg: &CallGraph,
    mut marked: Vec<BTreeSet<usize>>,
    mut work: Vec<(usize, usize)>,
) -> Vec<BTreeSet<usize>> {
    while let Some((fi, ni)) = work.pop() {
        for name in &cg.callees[fi][ni] {
            for node in cg.resolve(name, fi) {
                push_node(ws, &mut marked, &mut work, node);
            }
        }
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::index::Workspace;

    fn reach_of(sources: &[(&str, &str)]) -> (Workspace, Reach) {
        let ws = Workspace::from_sources(sources.iter().copied());
        let cg = CallGraph::build(&ws);
        let r = Reach::compute(&ws, &cg);
        (ws, r)
    }

    #[test]
    fn kernel_reach_crosses_files() {
        let launcher = "\
use b::helpers::deep_helper;
fn host(q: &Queue) {
    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {
        deep_helper(i, c);
    });
}
";
        let helpers = "\
fn deep_helper(i: usize, c: &KernelCounters) {
    leaf(i, c);
}
fn leaf(i: usize, c: &KernelCounters) {
    c.add_instructions(1);
}
fn host_only() {}
";
        let (ws, r) = reach_of(&[
            ("crates/a/src/filter.rs", launcher),
            ("crates/b/src/helpers.rs", helpers),
        ]);
        let hi = ws.file_index("crates/b/src/helpers.rs").unwrap();
        let names: Vec<&str> = r.kernel[hi]
            .iter()
            .map(|&ni| ws.files[hi].fns[ni].name.as_str())
            .collect();
        assert_eq!(names, ["deep_helper", "leaf"]);
        // `host` launches but does not itself run inside the kernel.
        let li = ws.file_index("crates/a/src/filter.rs").unwrap();
        assert!(r.kernel[li].is_empty());
        assert!(!r.kernel_ranges(&ws, li).is_empty(), "closure body counts");
    }

    #[test]
    fn report_reach_follows_callees_of_constructors() {
        let src = "\
fn build(records: &[Rec]) -> RunReport {
    let t = tally(records);
    RunReport { total: t }
}
fn tally(records: &[Rec]) -> u64 {
    records.len() as u64
}
fn unrelated() {}
";
        let (ws, r) = reach_of(&[("crates/a/src/engine.rs", src)]);
        let names: Vec<&str> = r.report[0]
            .iter()
            .map(|&ni| ws.files[0].fns[ni].name.as_str())
            .collect();
        assert_eq!(names, ["build", "tally"]);
    }

    #[test]
    fn any_report_suffix_roots_the_surface() {
        let src = "fn f() -> FaultClusterReport { FaultClusterReport { x: 1 } }\n";
        let (_ws, r) = reach_of(&[("crates/a/src/fault.rs", src)]);
        assert_eq!(r.report[0].len(), 1);
    }

    #[test]
    fn exempt_files_are_never_context() {
        let src = "\
fn bench_host(q: &Queue) {
    q.parallel_for(\"k\", \"bench\", n, 128, |i, c| { measured(i, c); });
}
fn measured(i: usize, c: &KernelCounters) { c.add_instructions(1); }
fn report() -> BenchReport { BenchReport { t: 0.0 } }
";
        let (ws, r) = reach_of(&[("crates/sigmo-bench/src/figures.rs", src)]);
        assert!(r.kernel[0].is_empty());
        assert!(r.report[0].is_empty());
        assert!(r.kernel_ranges(&ws, 0).is_empty());
    }
}
