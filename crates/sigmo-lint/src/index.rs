//! The workspace symbol index — the substrate for interprocedural
//! analysis.
//!
//! `sigmo-lint` started as a per-file lexical linter; the determinism
//! audit needs to reason about *where code runs*, not just what file it
//! sits in. This module lexes every source file once and records, per
//! file:
//!
//! * every `fn` item (name + body byte range, via [`crate::rules::fn_items`]);
//! * every kernel-launch closure body (the closures handed to
//!   `Queue::parallel_for*` — the code that executes inside a kernel);
//! * the `#[cfg(test)]` ranges (test code is outside the audit surface);
//! * whether the file is *context-exempt*: measurement and verification
//!   harnesses (`tests/`, `benches/`, `examples/`, `crates/sigmo-bench/`)
//!   time things with wall clocks and sum floats *by design*, so the
//!   reachability-gated rules do not treat their code as kernel or report
//!   context. File-wide rules (atomic orderings, unsafe hygiene) still
//!   apply to them.
//!
//! The index feeds [`crate::callgraph`] (lexical call edges) and
//! [`crate::reach`] (kernel/report reachability), which together decide
//! which byte ranges of each file the kernel-discipline and determinism
//! rules interrogate.

use crate::lexer::{self, SourceFile};
use crate::rules::{fn_items, in_ranges, FnItem, KERNEL_LAUNCHES};
use std::ops::Range;
use std::path::Path;

/// One indexed source file.
#[derive(Debug)]
pub struct FileIndex {
    /// The lexed file (blanked code view + comments).
    pub file: SourceFile,
    /// Every `fn` item with a body, in source order.
    pub fns: Vec<FnItem>,
    /// Byte ranges of kernel-launch closure bodies (both the stop probe
    /// and the kernel body closures), outside `#[cfg(test)]`.
    pub kernel_closures: Vec<Range<usize>>,
    /// `#[cfg(test)]` item ranges.
    pub tests: Vec<Range<usize>>,
    /// True for measurement/verification harness files whose code is not
    /// treated as kernel or report context (see module docs).
    pub context_exempt: bool,
}

/// The lexed workspace: every file the analyzer sees, in path order.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Indexed files, sorted by path.
    pub files: Vec<FileIndex>,
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…` →
/// `<name>`), or `""` for files outside `crates/` (workspace-root tests,
/// build scripts), which the call graph treats as unconstrained.
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// True for files whose code must not seed or carry kernel/report
/// context: test suites, benches, examples, and the measurement crate.
pub fn context_exempt(path: &str) -> bool {
    let exempt_dir =
        |d: &str| path.starts_with(&format!("{d}/")) || path.contains(&format!("/{d}/"));
    exempt_dir("tests")
        || exempt_dir("benches")
        || exempt_dir("examples")
        || path.starts_with("crates/sigmo-bench/")
}

impl Workspace {
    /// Indexes a set of `(path, source)` pairs. Paths should be
    /// workspace-relative and `/`-separated.
    pub fn from_sources<I, P, S>(sources: I) -> Self
    where
        I: IntoIterator<Item = (P, S)>,
        P: AsRef<str>,
        S: AsRef<str>,
    {
        let mut files: Vec<FileIndex> = sources
            .into_iter()
            .map(|(path, src)| index_file(path.as_ref(), src.as_ref()))
            .collect();
        files.sort_by(|a, b| a.file.path.cmp(&b.file.path));
        Workspace { files }
    }

    /// Indexes every workspace file under `root` (see
    /// [`crate::walk_workspace`]). Unreadable files are returned as
    /// `(path, error)` pairs for the driver to report.
    pub fn load(root: &Path) -> (Self, Vec<(String, String)>) {
        let mut sources = Vec::new();
        let mut errors = Vec::new();
        for rel in crate::walk_workspace(root) {
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            match std::fs::read_to_string(root.join(&rel)) {
                Ok(src) => sources.push((rel_str, src)),
                Err(e) => errors.push((rel_str, e.to_string())),
            }
        }
        (Self::from_sources(sources), errors)
    }

    /// Index of the file with the given path, if present.
    pub fn file_index(&self, path: &str) -> Option<usize> {
        self.files
            .binary_search_by(|f| f.file.path.as_str().cmp(path))
            .ok()
    }
}

/// Lexes and indexes one file.
pub fn index_file(path: &str, src: &str) -> FileIndex {
    let file = lexer::lex(path, src);
    let tests = file.test_ranges();
    let fns = fn_items(&file);
    let kernel_closures = kernel_closures(&file, &tests);
    FileIndex {
        fns,
        kernel_closures,
        tests,
        context_exempt: context_exempt(path),
        file,
    }
}

/// Byte ranges of every closure body inside a kernel launch's argument
/// list, outside `#[cfg(test)]`. Both the stop probe and the kernel body
/// execute under the launch, so both count as kernel context.
pub fn kernel_closures(file: &SourceFile, tests: &[Range<usize>]) -> Vec<Range<usize>> {
    let code = &file.code;
    let mut out = Vec::new();
    for launch in KERNEL_LAUNCHES {
        for at in crate::rules::find_all(file, 0..code.len(), launch) {
            if in_ranges(tests, at) {
                continue;
            }
            let args_open = at + launch.len() - 1;
            let Some(args_close) = lexer::matching_paren(code, args_open) else {
                continue;
            };
            out.extend(closure_bodies(code, args_open + 1, args_close));
        }
    }
    out.sort_by_key(|r| r.start);
    out
}

/// All closure bodies in `open..close` of the blanked code: every
/// `|params| body` (or `|| body`), where the body is either a brace block
/// or the expression up to the next top-level `,` / the end of the range.
fn closure_bodies(code: &str, open: usize, close: usize) -> Vec<Range<usize>> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = open;
    while i < close {
        match bytes[i] {
            b'|' => {
                // `||` (no parameters) or `|params|`.
                let params_end = if bytes.get(i + 1) == Some(&b'|') {
                    i + 1
                } else {
                    match (i + 1..close).find(|&j| bytes[j] == b'|') {
                        Some(j) => j,
                        None => break,
                    }
                };
                let mut j = params_end + 1;
                while j < close && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if j < close && bytes[j] == b'{' {
                    match lexer::matching_brace(code, j) {
                        Some(end) => {
                            out.push(j + 1..end);
                            i = end + 1;
                        }
                        None => break,
                    }
                } else {
                    // Expression body: up to the next `,` at depth 0.
                    let mut depth = 0i32;
                    let mut k = j;
                    while k < close {
                        match bytes[k] {
                            b'(' | b'[' | b'{' => depth += 1,
                            b')' | b']' | b'}' => depth -= 1,
                            b',' if depth == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    out.push(j..k);
                    i = k + 1;
                }
            }
            // Skip nested groups that are not closures (e.g. a tuple arg)
            // so a `|` inside them is not misread as a closure opener.
            b'(' | b'[' => match matching_any(code, i) {
                Some(end) => i = end + 1,
                None => break,
            },
            _ => i += 1,
        }
    }
    out
}

fn matching_any(code: &str, open: usize) -> Option<usize> {
    match code.as_bytes()[open] {
        b'(' => lexer::matching_paren(code, open),
        b'[' => {
            let bytes = code.as_bytes();
            let mut depth = 0usize;
            for (i, &b) in bytes.iter().enumerate().skip(open) {
                if b == b'[' {
                    depth += 1;
                } else if b == b']' {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_fns_and_kernel_closures() {
        let src = "\
fn host(q: &Queue) {
    q.parallel_for(\"k\", \"filter\", n, 128, |i, c| {
        helper(i, c);
    });
}
fn helper(i: usize, c: &KernelCounters) {
    c.add_instructions(1);
}
";
        let idx = index_file("crates/x/src/filter.rs", src);
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.kernel_closures.len(), 1);
        let body = &idx.file.code[idx.kernel_closures[0].clone()];
        assert!(body.contains("helper(i, c)"));
        assert!(!idx.context_exempt);
    }

    #[test]
    fn until_launches_collect_both_closures() {
        let src = "\
fn host(q: &Queue, gov: &Governor) {
    q.parallel_for_until(\"k\", \"join\", n, 64, || gov.stopped(), |i, c| {
        step(i, c);
    });
}
";
        let idx = index_file("crates/x/src/join.rs", src);
        assert_eq!(idx.kernel_closures.len(), 2, "{:?}", idx.kernel_closures);
        let probe = &idx.file.code[idx.kernel_closures[0].clone()];
        assert!(probe.contains("gov.stopped()"), "{probe:?}");
    }

    #[test]
    fn chunk_dispatch_launch_is_indexed() {
        let src = "\
fn host(q: &Queue) {
    q.parallel_for_chunks_until(\"k\", \"filter\", n, 64, || false, |items, c| {
        for i in items { touch(i, c); }
    });
}
";
        let idx = index_file("crates/x/src/filter.rs", src);
        assert_eq!(idx.kernel_closures.len(), 2);
    }

    #[test]
    fn test_module_launches_are_skipped() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(q: &Queue) {
        q.parallel_for(\"k\", \"t\", 1, 1, |_, _| {});
    }
}
";
        let idx = index_file("crates/x/src/filter.rs", src);
        assert!(idx.kernel_closures.is_empty());
    }

    #[test]
    fn harness_paths_are_context_exempt() {
        assert!(context_exempt("tests/determinism_queue.rs"));
        assert!(context_exempt("crates/sigmo-core/benches/filter.rs"));
        assert!(context_exempt("examples/quickstart.rs"));
        assert!(context_exempt("crates/sigmo-bench/src/figures.rs"));
        assert!(!context_exempt("crates/sigmo-core/src/filter.rs"));
        assert!(!context_exempt("crates/sigmo-serve/src/server.rs"));
    }

    #[test]
    fn workspace_sorts_and_finds_files() {
        let ws = Workspace::from_sources([("b.rs", "fn b() {}"), ("a.rs", "fn a() {}")]);
        assert_eq!(ws.files[0].file.path, "a.rs");
        assert_eq!(ws.file_index("b.rs"), Some(1));
        assert_eq!(ws.file_index("c.rs"), None);
    }
}
