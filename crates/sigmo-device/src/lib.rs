//! SYCL-flavoured data-parallel execution substrate.
//!
//! SIGMo's kernels are written in SYCL and dispatched to NVIDIA, AMD, and
//! Intel GPUs. No GPU is available here (and Rust GPU kernel crates are
//! immature), so this crate provides a faithful CPU stand-in that preserves
//! the programming model the paper's kernels are written against:
//!
//! * [`Queue::parallel_for`] — an ND-range of independent *work-items*
//!   (one GPU thread each), scheduled across CPU cores by rayon;
//! * [`Queue::parallel_for_work_group`] — *work-groups* that own local
//!   memory and iterate their work-items, matching the paper's join phase
//!   ("each data graph is assigned to a work-group; the work-items within
//!   that group iterate over all valid query graphs");
//! * [`KernelCounters`] — per-kernel instruction / byte / atomic counters
//!   accumulated by the kernels themselves, mirroring what Nsight/VTune/
//!   Rocprof measure;
//! * [`DeviceProfile`] + [`CostModel`] — an analytical model of three GPU
//!   platforms (V100S / MI100 / Max 1100) used to regenerate the paper's
//!   occupancy, roofline, and portability figures from the counters.
//!
//! The terminology follows the paper's §4 glossary: work-item = CUDA
//! thread, work-group = CUDA block, sub-group = warp/wavefront.

pub mod cost;
pub mod counters;
pub mod profile;
pub mod queue;
pub mod summary;

pub use cost::{CostModel, KernelCost, OccupancySample, RooflinePoint};
pub use counters::{CounterSnapshot, KernelCounters};
pub use profile::{DeviceKind, DeviceProfile};
pub use queue::{KernelRecord, LocalMem, Queue, WorkGroupCtx};
pub use summary::{render_table, summarize, KernelSummary};
