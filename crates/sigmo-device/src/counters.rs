//! Kernel operation counters.
//!
//! Kernels running on the executor account their own work — executed
//! instructions, global-memory traffic, atomic operations — into a
//! [`KernelCounters`] instance. The counters are what the analytical
//! [`crate::CostModel`] consumes to produce simulated kernel times,
//! occupancy, and instruction-roofline coordinates, standing in for the
//! hardware profilers (DCGM, Nsight Compute, VTune, Rocprof) used in §5.
//!
//! Accounting convention: kernels call the `add_*` methods with *aggregate*
//! counts per work-item (or per work-group) rather than per machine
//! instruction, using relaxed atomics so the overhead stays negligible.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe operation counters for one kernel launch.
#[derive(Debug, Default)]
pub struct KernelCounters {
    instructions: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    atomic_ops: AtomicU64,
    /// Bitmap words actually loaded (word-granular traffic, Figures 8/9).
    word_reads: AtomicU64,
    /// Sum of per-work-item trip counts, for divergence estimation.
    trip_sum: AtomicU64,
    /// Sum of squared trip counts.
    trip_sq_sum: AtomicU64,
    /// Number of work-items that reported a trip count.
    trip_n: AtomicU64,
}

/// An immutable snapshot of [`KernelCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterSnapshot {
    /// Executed (modeled) instructions.
    pub instructions: u64,
    /// Bytes read from global memory.
    pub bytes_read: u64,
    /// Bytes written to global memory.
    pub bytes_written: u64,
    /// Atomic read-modify-write operations.
    pub atomic_ops: u64,
    /// Bitmap words loaded from global memory. Word-granular reads are
    /// *also* included in `bytes_read` (at the modeled word width); this
    /// field keeps the word count itself visible so traffic per word
    /// width can be compared across configurations.
    pub word_reads: u64,
    /// Coefficient of variation of per-work-item trip counts; proxies
    /// control-flow divergence (0 = perfectly uniform).
    pub divergence: f64,
}

impl CounterSnapshot {
    /// Total global-memory traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Instruction intensity in instructions per byte — the x-axis of the
    /// instruction roofline (Figure 9).
    pub fn instruction_intensity(&self) -> f64 {
        let b = self.total_bytes();
        if b == 0 {
            f64::INFINITY
        } else {
            self.instructions as f64 / b as f64
        }
    }

    /// Merges another snapshot into this one: counts add saturating (a
    /// pathological run must clamp, not wrap, so the roofline stays
    /// monotone). `divergence` takes the max of the two inputs — the
    /// per-item trip moments are gone at snapshot granularity, so the
    /// exact pooled CV is unrecoverable; max is the conservative proxy
    /// (merging cannot make a divergent phase look uniform).
    pub fn merge(&mut self, other: &CounterSnapshot) {
        self.instructions = self.instructions.saturating_add(other.instructions);
        self.bytes_read = self.bytes_read.saturating_add(other.bytes_read);
        self.bytes_written = self.bytes_written.saturating_add(other.bytes_written);
        self.atomic_ops = self.atomic_ops.saturating_add(other.atomic_ops);
        self.word_reads = self.word_reads.saturating_add(other.word_reads);
        self.divergence = self.divergence.max(other.divergence);
    }
}

impl KernelCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds executed instructions.
    #[inline]
    pub fn add_instructions(&self, n: u64) {
        self.instructions.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds bytes read from global memory.
    #[inline]
    pub fn add_bytes_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds bytes written to global memory.
    #[inline]
    pub fn add_bytes_written(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds atomic read-modify-write operations (each also counts as one
    /// instruction and 2× word traffic is the caller's choice).
    #[inline]
    pub fn add_atomics(&self, n: u64) {
        self.atomic_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `words` word-granular bitmap loads of `word_bytes` each: the
    /// word count lands in `word_reads` and the byte volume in
    /// `bytes_read`. Kernels that scan the candidate bitmap charge each
    /// distinct word they actually touch through this method instead of
    /// estimating traffic from row lengths — the honest accounting the
    /// word-parallel scans make possible.
    #[inline]
    pub fn add_word_reads(&self, words: u64, word_bytes: u64) {
        self.word_reads.fetch_add(words, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(words.saturating_mul(word_bytes), Ordering::Relaxed);
    }

    /// Records one work-item's trip count (loop iterations / visited
    /// candidates); used to estimate sub-group divergence, the effect the
    /// paper observes in the join phase (§5.1.3: "warp-level divergence:
    /// different threads process query graphs of varying size").
    #[inline]
    pub fn record_trips(&self, trips: u64) {
        self.trip_sum.fetch_add(trips, Ordering::Relaxed);
        self.trip_sq_sum
            .fetch_add(trips.saturating_mul(trips), Ordering::Relaxed);
        self.trip_n.fetch_add(1, Ordering::Relaxed);
    }

    /// Records pre-aggregated trip moments — the `sum` of trips and
    /// `sq_sum` of squared trips over `n` work-items — in one charge.
    /// Work-group kernels accumulate per-item trips locally and flush
    /// once per group; the pooled divergence estimate is exactly what `n`
    /// individual [`Self::record_trips`] calls would have produced.
    #[inline]
    pub fn record_trip_moments(&self, sum: u64, sq_sum: u64, n: u64) {
        self.trip_sum.fetch_add(sum, Ordering::Relaxed);
        self.trip_sq_sum.fetch_add(sq_sum, Ordering::Relaxed);
        self.trip_n.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a snapshot of the current totals.
    // sigmo-lint: allow(relaxed-read-in-report) — the queue snapshots
    // only after its parallel bridge joined, so every counter is
    // quiescent; mid-kernel snapshots are not part of the API.
    pub fn snapshot(&self) -> CounterSnapshot {
        let n = self.trip_n.load(Ordering::Relaxed);
        let divergence = if n == 0 {
            0.0
        } else {
            let sum = self.trip_sum.load(Ordering::Relaxed) as f64;
            let sq = self.trip_sq_sum.load(Ordering::Relaxed) as f64;
            let mean = sum / n as f64;
            if mean <= f64::EPSILON {
                0.0
            } else {
                let var = (sq / n as f64 - mean * mean).max(0.0);
                var.sqrt() / mean
            }
        };
        CounterSnapshot {
            instructions: self.instructions.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            atomic_ops: self.atomic_ops.load(Ordering::Relaxed),
            word_reads: self.word_reads.load(Ordering::Relaxed),
            divergence,
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.instructions.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.atomic_ops.store(0, Ordering::Relaxed);
        self.word_reads.store(0, Ordering::Relaxed);
        self.trip_sum.store(0, Ordering::Relaxed);
        self.trip_sq_sum.store(0, Ordering::Relaxed);
        self.trip_n.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_snapshot() {
        let c = KernelCounters::new();
        c.add_instructions(100);
        c.add_bytes_read(40);
        c.add_bytes_written(10);
        c.add_atomics(3);
        let s = c.snapshot();
        assert_eq!(s.instructions, 100);
        assert_eq!(s.total_bytes(), 50);
        assert_eq!(s.atomic_ops, 3);
        assert!((s.instruction_intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn word_reads_count_words_and_bytes() {
        let c = KernelCounters::new();
        c.add_bytes_read(5);
        c.add_word_reads(3, 8);
        let s = c.snapshot();
        assert_eq!(s.word_reads, 3);
        assert_eq!(s.bytes_read, 5 + 24);
        c.reset();
        assert_eq!(c.snapshot().word_reads, 0);
    }

    #[test]
    fn intensity_with_zero_bytes_is_infinite() {
        let c = KernelCounters::new();
        c.add_instructions(5);
        assert!(c.snapshot().instruction_intensity().is_infinite());
    }

    #[test]
    fn divergence_zero_for_uniform_trips() {
        let c = KernelCounters::new();
        for _ in 0..32 {
            c.record_trips(10);
        }
        assert!(c.snapshot().divergence.abs() < 1e-12);
    }

    #[test]
    fn divergence_positive_for_skewed_trips() {
        let c = KernelCounters::new();
        for i in 0..32u64 {
            c.record_trips(if i == 0 { 1000 } else { 1 });
        }
        assert!(c.snapshot().divergence > 1.0);
    }

    #[test]
    fn trip_moments_match_per_item_recording() {
        let per_item = KernelCounters::new();
        let pooled = KernelCounters::new();
        let trips = [0u64, 3, 3, 17, 1];
        for &t in &trips {
            per_item.record_trips(t);
        }
        let sum: u64 = trips.iter().sum();
        let sq: u64 = trips.iter().map(|t| t * t).sum();
        pooled.record_trip_moments(sum, sq, trips.len() as u64);
        assert_eq!(per_item.snapshot(), pooled.snapshot());
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = KernelCounters::new();
        c.add_instructions(7);
        c.record_trips(3);
        c.reset();
        let s = c.snapshot();
        assert_eq!(s.instructions, 0);
        assert_eq!(s.divergence, 0.0);
    }

    #[test]
    fn merge_sums_counts_and_takes_max_divergence() {
        let a = KernelCounters::new();
        a.add_instructions(10);
        a.add_word_reads(2, 8);
        a.record_trips(5);
        a.record_trips(5);
        let b = KernelCounters::new();
        b.add_instructions(30);
        b.add_bytes_written(7);
        b.record_trips(1);
        b.record_trips(99);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut m = sa;
        m.merge(&sb);
        assert_eq!(m.instructions, 40);
        assert_eq!(m.word_reads, 2);
        assert_eq!(m.bytes_read, 16);
        assert_eq!(m.bytes_written, 7);
        assert_eq!(m.divergence, sa.divergence.max(sb.divergence));
        assert!(m.divergence > 0.9); // b's skew survives the merge
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = CounterSnapshot {
            instructions: u64::MAX - 1,
            bytes_read: u64::MAX,
            ..Default::default()
        };
        let b = CounterSnapshot {
            instructions: 1000,
            bytes_read: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, u64::MAX);
        assert_eq!(a.bytes_read, u64::MAX);
    }

    #[test]
    fn merge_with_empty_snapshot_is_identity() {
        let c = KernelCounters::new();
        c.add_instructions(5);
        c.record_trips(1);
        c.record_trips(3);
        let s = c.snapshot();
        let mut m = s;
        m.merge(&CounterSnapshot::default());
        assert_eq!(m, s);
    }

    #[test]
    fn divergence_is_zero_when_no_trips_recorded() {
        let c = KernelCounters::new();
        c.add_instructions(10);
        let s = c.snapshot();
        assert_eq!(s.divergence, 0.0);
        assert!(s.divergence.is_finite());
    }

    #[test]
    fn divergence_is_zero_for_a_single_trip_sample() {
        let c = KernelCounters::new();
        c.record_trips(1234);
        let s = c.snapshot();
        // One sample: variance is exactly zero, CV must not go NaN.
        assert!(s.divergence.abs() < 1e-9, "{}", s.divergence);
        assert!(s.divergence.is_finite());
    }

    #[test]
    fn divergence_handles_all_zero_trips() {
        let c = KernelCounters::new();
        c.record_trips(0);
        c.record_trips(0);
        // Mean is zero: CV is defined as 0 rather than 0/0.
        assert_eq!(c.snapshot().divergence, 0.0);
    }

    #[test]
    fn divergence_stays_finite_on_huge_trip_counts() {
        // The squared-trip accumulator saturates per item; the result may
        // lose precision at this scale but must never go NaN/inf.
        let c = KernelCounters::new();
        c.record_trips(u64::MAX);
        c.record_trips(u64::MAX);
        assert!(c.snapshot().divergence.is_finite());
    }

    #[test]
    fn concurrent_accumulation_is_lossless() {
        let c = std::sync::Arc::new(KernelCounters::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.add_instructions(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().instructions, 8000);
    }
}
