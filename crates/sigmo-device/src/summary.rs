//! Per-kernel profiling summaries — the executor's answer to
//! `nsys`/`rocprof` summary tables, aggregating the kernel record log into
//! per-kernel-name rows with call counts, times, and operation totals.

use crate::cost::CostModel;
use crate::queue::KernelRecord;
use serde::Serialize;

/// Aggregated statistics for one kernel name.
#[derive(Debug, Clone, Serialize)]
pub struct KernelSummary {
    /// Kernel name.
    pub name: String,
    /// Phase tag.
    pub phase: String,
    /// Number of launches.
    pub calls: usize,
    /// Total host wall-clock seconds.
    pub wall_s: f64,
    /// Total simulated device seconds (incl. launch overhead).
    pub sim_s: f64,
    /// Total modeled instructions.
    pub instructions: u64,
    /// Total modeled global-memory bytes.
    pub bytes: u64,
    /// Total atomic operations.
    pub atomics: u64,
    /// Total bitmap words loaded (word-granular reads, also in `bytes`).
    pub word_reads: u64,
    /// Mean occupancy across launches (simple average).
    pub mean_occupancy: f64,
}

/// Aggregates a record log into per-kernel summaries, ordered by first
/// appearance.
// sigmo-lint: allow(float-accumulation) — sequential fold over the record
// log in launch order, single-threaded; the accumulation order is fixed
// by the log itself. (wall_s is display-only besides.)
pub fn summarize(records: &[KernelRecord], model: &CostModel) -> Vec<KernelSummary> {
    let mut order: Vec<String> = Vec::new();
    let mut map: std::collections::HashMap<String, KernelSummary> = Default::default();
    for r in records {
        let cost = model.kernel_cost(r);
        let entry = map.entry(r.name.clone()).or_insert_with(|| {
            order.push(r.name.clone());
            KernelSummary {
                name: r.name.clone(),
                phase: r.phase.clone(),
                calls: 0,
                wall_s: 0.0,
                sim_s: 0.0,
                instructions: 0,
                bytes: 0,
                atomics: 0,
                word_reads: 0,
                mean_occupancy: 0.0,
            }
        });
        entry.calls += 1;
        entry.wall_s += r.wall_time.as_secs_f64();
        entry.sim_s += cost.total_s();
        entry.instructions += r.counters.instructions;
        entry.bytes += r.counters.total_bytes();
        entry.atomics += r.counters.atomic_ops;
        entry.word_reads += r.counters.word_reads;
        entry.mean_occupancy += cost.occupancy;
    }
    order
        .into_iter()
        .map(|name| {
            let mut s = map.remove(&name).expect("inserted above");
            s.mean_occupancy /= s.calls as f64;
            s
        })
        .collect()
}

/// Renders summaries as an aligned text table.
pub fn render_table(summaries: &[KernelSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<8} {:>6} {:>11} {:>11} {:>13} {:>12} {:>9} {:>11} {:>7}\n",
        "kernel",
        "phase",
        "calls",
        "wall (s)",
        "sim (s)",
        "instructions",
        "bytes",
        "atomics",
        "word reads",
        "occ %"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:<24} {:<8} {:>6} {:>11.5} {:>11.6} {:>13} {:>12} {:>9} {:>11} {:>7.1}\n",
            s.name,
            s.phase,
            s.calls,
            s.wall_s,
            s.sim_s,
            s.instructions,
            s.bytes,
            s.atomics,
            s.word_reads,
            s.mean_occupancy * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::KernelCounters;
    use crate::profile::DeviceProfile;
    use std::time::Duration;

    fn rec(name: &str, phase: &str, instr: u64) -> KernelRecord {
        let c = KernelCounters::new();
        c.add_instructions(instr);
        c.add_bytes_read(instr / 2);
        c.add_word_reads(3, 8);
        KernelRecord {
            name: name.into(),
            phase: phase.into(),
            global_size: 1000,
            work_group_size: 128,
            wall_time: Duration::from_micros(50),
            counters: c.snapshot(),
            cancelled: false,
            skipped_groups: 0,
        }
    }

    #[test]
    fn summaries_aggregate_by_name_in_first_seen_order() {
        let model = CostModel::new(DeviceProfile::nvidia_v100s());
        let records = vec![
            rec("refine", "filter", 100),
            rec("join", "join", 50),
            rec("refine", "filter", 200),
        ];
        let s = summarize(&records, &model);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "refine");
        assert_eq!(s[0].calls, 2);
        assert_eq!(s[0].instructions, 300);
        assert_eq!(s[0].word_reads, 6, "word reads aggregate across launches");
        assert_eq!(s[1].name, "join");
        assert_eq!(s[1].calls, 1);
    }

    #[test]
    fn table_renders_every_kernel() {
        let model = CostModel::new(DeviceProfile::nvidia_v100s());
        let records = vec![rec("a", "x", 1), rec("b", "y", 2)];
        let table = render_table(&summarize(&records, &model));
        assert!(table.contains("a"));
        assert!(table.contains("b"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn empty_log_summarizes_empty() {
        let model = CostModel::new(DeviceProfile::nvidia_v100s());
        assert!(summarize(&[], &model).is_empty());
    }
}
