//! Analytical device cost model.
//!
//! Converts kernel operation counts ([`crate::CounterSnapshot`]) into
//! simulated execution times, occupancy estimates, and instruction-roofline
//! coordinates for a given [`DeviceProfile`]. This is the substitution for
//! the hardware profilers used in the paper's §5: the model captures the
//! first-order effects the paper reports —
//!
//! * kernels are `max(compute, memory)`-bound plus a fixed launch/sync
//!   overhead per launch (host synchronization between refinement
//!   iterations, §4.4);
//! * occupancy is limited by how many work-items the launch actually
//!   exposes and degraded by control-flow divergence (§5.1.3);
//! * wider sub-groups amplify divergence penalties (§5.3: MI100's 64-wide
//!   wavefronts are the most divergence-sensitive).

use crate::counters::CounterSnapshot;
use crate::profile::DeviceProfile;
use crate::queue::KernelRecord;
use serde::Serialize;

/// Simulated cost of one kernel launch.
#[derive(Debug, Clone, Serialize)]
pub struct KernelCost {
    /// Kernel name.
    pub name: String,
    /// Phase tag.
    pub phase: String,
    /// Simulated execution time in seconds (excluding launch overhead).
    pub exec_time_s: f64,
    /// Launch + host-sync overhead in seconds.
    pub overhead_s: f64,
    /// Estimated achieved occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// True when the memory roof (not compute) bounds the kernel.
    pub memory_bound: bool,
}

impl KernelCost {
    /// Total simulated time including overhead.
    pub fn total_s(&self) -> f64 {
        self.exec_time_s + self.overhead_s
    }
}

/// One point of the simulated occupancy timeline (Figure 8).
#[derive(Debug, Clone, Serialize)]
pub struct OccupancySample {
    /// Start of the kernel in simulated milliseconds since pipeline start.
    pub t_start_ms: f64,
    /// End of the kernel.
    pub t_end_ms: f64,
    /// Occupancy percentage during the kernel.
    pub occupancy_pct: f64,
    /// Phase tag.
    pub phase: String,
}

/// One point of the instruction roofline (Figure 9).
#[derive(Debug, Clone, Serialize)]
pub struct RooflinePoint {
    /// Phase tag the point aggregates.
    pub phase: String,
    /// Instruction intensity: instructions per byte of global traffic.
    pub intensity: f64,
    /// Achieved throughput in giga-instructions per second.
    pub ginstr_per_s: f64,
}

/// The analytical model bound to one device profile.
#[derive(Debug, Clone)]
pub struct CostModel {
    profile: DeviceProfile,
    /// When set, launches are assumed to fill the device (occupancy limited
    /// only by divergence). This models the paper-scale regime — 114,901
    /// data graphs saturate any of the evaluated GPUs — when the local
    /// dataset is too small to do so itself.
    assume_saturated: bool,
}

impl CostModel {
    /// Creates a model for `profile`.
    pub fn new(profile: DeviceProfile) -> Self {
        Self {
            profile,
            assume_saturated: false,
        }
    }

    /// Creates a model that assumes every launch saturates the device (see
    /// the field docs; used by the paper-scale figure regenerators).
    pub fn saturated(profile: DeviceProfile) -> Self {
        Self {
            profile,
            assume_saturated: true,
        }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Estimated occupancy for a launch: fraction of the device's resident
    /// work-item capacity the launch fills, degraded by divergence.
    pub fn occupancy(&self, global_size: usize, counters: &CounterSnapshot) -> f64 {
        let cap = self.profile.max_resident_work_items() as f64;
        let fill = if self.assume_saturated {
            1.0
        } else {
            (global_size as f64 / cap).min(1.0)
        };
        // Divergence shrinks the number of *useful* resident lanes: a
        // coefficient of variation of 1 roughly halves effectiveness, and
        // the loss saturates there — beyond that, resident sub-groups hide
        // the imbalance (the paper's join plateaus near 48% occupancy
        // rather than collapsing, §5.1.3).
        let div_factor = 1.0 / (1.0 + counters.divergence.min(1.0));
        (fill * div_factor).clamp(0.0, 1.0)
    }

    /// Simulated cost of one recorded kernel.
    pub fn kernel_cost(&self, rec: &KernelRecord) -> KernelCost {
        let c = &rec.counters;
        if rec.phase == "transfer" {
            // Host↔device transfers move over the interconnect, not HBM.
            let t = c.total_bytes() as f64 / (self.profile.pcie_bandwidth_gb_s * 1e9);
            return KernelCost {
                name: rec.name.clone(),
                phase: rec.phase.clone(),
                exec_time_s: t,
                overhead_s: self.profile.launch_overhead_us * 1e-6,
                occupancy: 0.0,
                memory_bound: true,
            };
        }
        let occupancy = self.occupancy(rec.global_size, c);
        // Divergence penalty on compute: idle lanes inside a sub-group
        // still occupy issue slots; wider sub-groups waste more. The
        // penalty saturates — once divergence exceeds the sub-group scale,
        // the scheduler hides further imbalance behind other resident
        // sub-groups.
        let width_ratio = self.profile.sub_group_size as f64 / 32.0;
        let lane_penalty = 1.0 + c.divergence.min(1.0) * width_ratio * 0.5;
        let eff_peak = self.profile.peak_ginstr_per_s * 1e9 * occupancy.max(1e-3) / lane_penalty;
        let compute_s = c.instructions as f64 / eff_peak;
        // Atomics serialize within the memory system: charge extra traffic.
        let atomic_bytes = c.atomic_ops * 8;
        let mem_s =
            (c.total_bytes() + atomic_bytes) as f64 / (self.profile.mem_bandwidth_gb_s * 1e9);
        let exec = compute_s.max(mem_s);
        KernelCost {
            name: rec.name.clone(),
            phase: rec.phase.clone(),
            exec_time_s: exec,
            overhead_s: self.profile.launch_overhead_us * 1e-6,
            occupancy,
            memory_bound: mem_s >= compute_s,
        }
    }

    /// Simulated total time over a record log (sum of kernels + overheads).
    pub fn total_time_s(&self, records: &[KernelRecord]) -> f64 {
        records.iter().map(|r| self.kernel_cost(r).total_s()).sum()
    }

    /// Simulated per-phase time over a record log.
    pub fn phase_time_s(&self, records: &[KernelRecord], phase: &str) -> f64 {
        records
            .iter()
            .filter(|r| r.phase == phase)
            .map(|r| self.kernel_cost(r).total_s())
            .sum()
    }

    /// Builds the occupancy timeline of Figure 8: kernels laid end-to-end
    /// on the simulated clock, occupancy dropping to zero during host-side
    /// synchronization gaps (the launch overhead).
    pub fn occupancy_timeline(&self, records: &[KernelRecord]) -> Vec<OccupancySample> {
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(records.len());
        for rec in records {
            let cost = self.kernel_cost(rec);
            // Sync gap before the kernel (occupancy 0, not emitted).
            t += cost.overhead_s * 1e3;
            let start = t;
            t += cost.exec_time_s * 1e3;
            out.push(OccupancySample {
                t_start_ms: start,
                t_end_ms: t,
                occupancy_pct: cost.occupancy * 100.0,
                phase: rec.phase.clone(),
            });
        }
        out
    }

    /// Aggregates records into per-phase instruction-roofline points
    /// (Figure 9). Throughput uses the simulated phase time.
    pub fn roofline(&self, records: &[KernelRecord]) -> Vec<RooflinePoint> {
        let mut phases: Vec<String> = Vec::new();
        for r in records {
            if !phases.contains(&r.phase) {
                phases.push(r.phase.clone());
            }
        }
        phases
            .iter()
            .map(|phase| {
                let mut instr = 0u64;
                let mut bytes = 0u64;
                let mut time = 0.0f64;
                for r in records.iter().filter(|r| &r.phase == phase) {
                    instr += r.counters.instructions;
                    bytes += r.counters.total_bytes();
                    time += self.kernel_cost(r).exec_time_s;
                }
                RooflinePoint {
                    phase: phase.clone(),
                    intensity: if bytes == 0 {
                        f64::INFINITY
                    } else {
                        instr as f64 / bytes as f64
                    },
                    ginstr_per_s: if time <= 0.0 {
                        0.0
                    } else {
                        instr as f64 / time / 1e9
                    },
                }
            })
            .collect()
    }

    /// The roofline ceilings for this device in Figure 9's format:
    /// `(name, slope GB/s or flat Ginstr/s)`. Memory roofs are lines
    /// `throughput = bandwidth × intensity`; the compute roof is flat.
    pub fn roofs(&self) -> [(&'static str, f64); 4] {
        [
            ("HBM", self.profile.mem_bandwidth_gb_s),
            ("L2", self.profile.l2_bandwidth_gb_s),
            ("L1", self.profile.l1_bandwidth_gb_s),
            ("Compute", self.profile.peak_ginstr_per_s),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::KernelCounters;
    use std::time::Duration;

    fn record(
        phase: &str,
        global: usize,
        instr: u64,
        bytes: u64,
        divergence_trips: &[u64],
    ) -> KernelRecord {
        let c = KernelCounters::new();
        c.add_instructions(instr);
        c.add_bytes_read(bytes);
        for &t in divergence_trips {
            c.record_trips(t);
        }
        KernelRecord {
            name: "k".into(),
            phase: phase.into(),
            global_size: global,
            work_group_size: 256,
            wall_time: Duration::from_millis(1),
            counters: c.snapshot(),
            cancelled: false,
            skipped_groups: 0,
        }
    }

    #[test]
    fn big_uniform_launch_reaches_full_occupancy() {
        let m = CostModel::new(DeviceProfile::nvidia_v100s());
        let r = record("filter", 10_000_000, 1_000_000, 1_000, &[5, 5, 5, 5]);
        let cost = m.kernel_cost(&r);
        assert!(cost.occupancy > 0.99, "occupancy {}", cost.occupancy);
    }

    #[test]
    fn small_launch_underfills_device() {
        let m = CostModel::new(DeviceProfile::nvidia_v100s());
        let r = record("join", 1000, 1_000_000, 1_000, &[]);
        let cost = m.kernel_cost(&r);
        assert!(cost.occupancy < 0.05);
    }

    #[test]
    fn divergence_lowers_occupancy_and_raises_time() {
        let m = CostModel::new(DeviceProfile::nvidia_v100s());
        let uniform = record("join", 10_000_000, 1_000_000_000, 1_000, &[10; 64]);
        let skewed = record(
            "join",
            10_000_000,
            1_000_000_000,
            1_000,
            &[1, 1, 1, 1, 1, 1, 1, 500],
        );
        let cu = m.kernel_cost(&uniform);
        let cs = m.kernel_cost(&skewed);
        assert!(cs.occupancy < cu.occupancy);
        assert!(cs.exec_time_s > cu.exec_time_s);
    }

    #[test]
    fn wider_subgroups_pay_more_for_divergence() {
        let skewed = record("join", 100_000_000, 10_000_000_000, 1_000, &[1, 1, 1, 200]);
        let t_nv = CostModel::new(DeviceProfile::nvidia_v100s())
            .kernel_cost(&skewed)
            .exec_time_s;
        let t_amd = CostModel::new(DeviceProfile::amd_mi100())
            .kernel_cost(&skewed)
            .exec_time_s;
        // MI100 has a higher raw peak, so absent divergence it would be
        // faster; verify the penalty ratio is worse for the wider wavefront.
        let uniform = record("join", 100_000_000, 10_000_000_000, 1_000, &[10; 64]);
        let u_nv = CostModel::new(DeviceProfile::nvidia_v100s())
            .kernel_cost(&uniform)
            .exec_time_s;
        let u_amd = CostModel::new(DeviceProfile::amd_mi100())
            .kernel_cost(&uniform)
            .exec_time_s;
        assert!(t_amd / u_amd > t_nv / u_nv);
    }

    #[test]
    fn memory_bound_detection() {
        let m = CostModel::new(DeviceProfile::nvidia_v100s());
        let mem_heavy = record("filter", 10_000_000, 1_000, 10_000_000_000, &[]);
        assert!(m.kernel_cost(&mem_heavy).memory_bound);
        let compute_heavy = record("filter", 10_000_000, 10_000_000_000_000, 1_000, &[]);
        assert!(!m.kernel_cost(&compute_heavy).memory_bound);
    }

    #[test]
    fn timeline_is_monotone_and_gapped() {
        let m = CostModel::new(DeviceProfile::nvidia_v100s());
        let recs = vec![
            record("filter", 10_000_000, 1_000_000_000, 1_000_000, &[]),
            record("join", 10_000_000, 1_000_000_000, 1_000_000, &[]),
        ];
        let tl = m.occupancy_timeline(&recs);
        assert_eq!(tl.len(), 2);
        assert!(tl[0].t_start_ms > 0.0, "launch overhead precedes kernel");
        assert!(tl[0].t_end_ms <= tl[1].t_start_ms);
        assert!(tl[1].t_end_ms > tl[1].t_start_ms);
    }

    #[test]
    fn roofline_points_below_roofs() {
        let m = CostModel::new(DeviceProfile::nvidia_v100s());
        let recs = vec![record(
            "filter",
            10_000_000,
            2_000_000_000,
            4_000_000_000,
            &[],
        )];
        let pts = m.roofline(&recs);
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        // Achieved throughput cannot exceed min(compute roof, HBM*intensity).
        let hbm = m.roofs()[0].1;
        let compute = m.roofs()[3].1;
        assert!(p.ginstr_per_s <= compute * 1.01);
        assert!(p.ginstr_per_s <= hbm * p.intensity * 1.01);
    }

    #[test]
    fn phase_time_partitions_total() {
        let m = CostModel::new(DeviceProfile::nvidia_v100s());
        let recs = vec![
            record("filter", 1_000_000, 1_000_000, 1_000, &[]),
            record("join", 1_000_000, 1_000_000, 1_000, &[]),
        ];
        let total = m.total_time_s(&recs);
        let sum = m.phase_time_s(&recs, "filter") + m.phase_time_s(&recs, "join");
        assert!((total - sum).abs() < 1e-12);
    }
}
