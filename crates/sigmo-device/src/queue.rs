//! The execution queue: ND-range and work-group kernel dispatch.
//!
//! Mirrors the subset of the SYCL queue API SIGMo's kernels need. Kernels
//! are plain closures; the queue schedules them over rayon, measures real
//! wall-clock time, and (together with [`crate::KernelCounters`]) feeds the
//! analytical cost model.

use crate::counters::{CounterSnapshot, KernelCounters};
use crate::profile::DeviceProfile;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Work-group local memory: a scratch buffer shared by the work-items of
/// one group, mirroring SYCL local accessors. The filter kernel prefetches
/// candidate-bitmap words into local memory before filtering (§4.4).
#[derive(Debug)]
pub struct LocalMem {
    words: Vec<u64>,
}

impl LocalMem {
    /// Allocates `len` words of local memory, zeroed.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len],
        }
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable backing words.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears to zero, keeping capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Resizes (zero-filling new words).
    pub fn resize(&mut self, len: usize) {
        self.words.resize(len, 0);
        // Old contents are stale between launches: callers clear explicitly.
    }
}

/// Context handed to a work-group kernel body.
pub struct WorkGroupCtx<'a> {
    /// Linear group id.
    pub group_id: usize,
    /// Work-group size (number of work-items in the group).
    pub group_size: usize,
    /// The group's local memory.
    pub local: &'a mut LocalMem,
    /// Per-kernel counters for operation accounting.
    pub counters: &'a KernelCounters,
}

/// Record of one executed kernel.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name (for the occupancy timeline / roofline legend).
    pub name: String,
    /// Phase tag ("filter" / "mapping" / "join" / other).
    pub phase: String,
    /// ND-range size (total work-items launched).
    pub global_size: usize,
    /// Work-group size used.
    pub work_group_size: usize,
    /// Real wall-clock execution time on the host executor.
    pub wall_time: Duration,
    /// Operation counters accumulated by the kernel body.
    pub counters: CounterSnapshot,
    /// True when a stop probe was tripped during this launch: the kernel
    /// ran under a governor and was cut short cooperatively.
    pub cancelled: bool,
    /// Work-groups the dispatcher skipped entirely because the stop probe
    /// was already tripped when they would have started. Groups already
    /// running when the probe trips still finish (cooperative, not
    /// preemptive — the kernel body itself consults the governor).
    pub skipped_groups: usize,
}

/// An in-order execution queue bound to a device profile.
///
/// Unlike a real SYCL queue, execution is synchronous (`parallel_for`
/// returns when the kernel completes); SIGMo's pipeline is a sequence of
/// host-synchronized kernels anyway (§4.4), so nothing is lost.
pub struct Queue {
    profile: DeviceProfile,
    records: Mutex<Vec<KernelRecord>>,
}

impl Queue {
    /// Creates a queue on the given device profile.
    pub fn new(profile: DeviceProfile) -> Self {
        Self {
            profile,
            records: Mutex::new(Vec::new()),
        }
    }

    /// The device profile this queue executes on.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Launches an ND-range kernel of `global_size` independent work-items.
    ///
    /// `body(item_id, &counters)` is invoked once per work-item, scheduled
    /// over the host cores in chunks of `work_group_size` (preserving the
    /// spatial-locality benefits the paper gets from coalescing: adjacent
    /// work-items run adjacently).
    pub fn parallel_for<F>(
        &self,
        name: &str,
        phase: &str,
        global_size: usize,
        work_group_size: usize,
        body: F,
    ) -> CounterSnapshot
    where
        F: Fn(usize, &KernelCounters) + Sync,
    {
        self.parallel_for_until(name, phase, global_size, work_group_size, || false, body)
    }

    /// [`Queue::parallel_for`] with a cooperative stop probe: before each
    /// work-group starts, `stop()` is consulted, and a tripped probe skips
    /// every not-yet-started group (groups already running finish on their
    /// own — the body is expected to consult the same governor). The
    /// kernel record notes `cancelled` and the skipped-group count.
    pub fn parallel_for_until<S, F>(
        &self,
        name: &str,
        phase: &str,
        global_size: usize,
        work_group_size: usize,
        stop: S,
        body: F,
    ) -> CounterSnapshot
    where
        S: Fn() -> bool + Sync,
        F: Fn(usize, &KernelCounters) + Sync,
    {
        self.parallel_for_chunks_until(
            name,
            phase,
            global_size,
            work_group_size,
            stop,
            |items, counters| {
                for i in items {
                    body(i, counters);
                }
            },
        )
    }

    /// [`Queue::parallel_for_until`] dispatched at work-group charge
    /// granularity: the body receives each group's contiguous work-item
    /// range (and the launch counters) exactly once, so a kernel can
    /// accumulate its modeled charges in group-locals and flush them with
    /// a handful of counter RMWs per *group* instead of several per
    /// work-item — the shared-atomic traffic that otherwise dominates
    /// short work-items on the host executor. Dispatch order, stop-probe
    /// semantics, and the kernel record are identical to
    /// [`Queue::parallel_for_until`].
    // sigmo-lint: allow(wall-clock-in-result) — wall_time is display-only,
    // excluded from determinism keys; the cost model prices counters.
    // sigmo-lint: allow(relaxed-read-in-report) — `skipped` is read after
    // the parallel bridge joined; no writer remains.
    pub fn parallel_for_chunks_until<S, F>(
        &self,
        name: &str,
        phase: &str,
        global_size: usize,
        work_group_size: usize,
        stop: S,
        body: F,
    ) -> CounterSnapshot
    where
        S: Fn() -> bool + Sync,
        F: Fn(std::ops::Range<usize>, &KernelCounters) + Sync,
    {
        let wg = work_group_size.max(1);
        let counters = KernelCounters::new();
        let skipped = AtomicUsize::new(0);
        let start = Instant::now();
        let num_groups = global_size.div_ceil(wg);
        (0..num_groups).into_par_iter().for_each(|g| {
            if stop() {
                skipped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let lo = g * wg;
            let hi = ((g + 1) * wg).min(global_size);
            body(lo..hi, &counters);
        });
        let wall = start.elapsed();
        let snap = counters.snapshot();
        let skipped = skipped.load(Ordering::Relaxed);
        self.records.lock().push(KernelRecord {
            name: name.to_string(),
            phase: phase.to_string(),
            global_size,
            work_group_size: wg,
            wall_time: wall,
            counters: snap,
            cancelled: skipped > 0 || stop(),
            skipped_groups: skipped,
        });
        snap
    }

    /// Launches a work-group kernel: `num_groups` groups, each with its own
    /// [`LocalMem`] of `local_words` words. The body receives a
    /// [`WorkGroupCtx`] and is responsible for iterating its work-items
    /// (the paper's join kernel iterates mapped query graphs this way).
    pub fn parallel_for_work_group<F>(
        &self,
        name: &str,
        phase: &str,
        num_groups: usize,
        work_group_size: usize,
        local_words: usize,
        body: F,
    ) -> CounterSnapshot
    where
        F: Fn(&mut WorkGroupCtx<'_>) + Sync,
    {
        self.parallel_for_work_group_until(
            name,
            phase,
            num_groups,
            work_group_size,
            local_words,
            || false,
            body,
        )
    }

    /// [`Queue::parallel_for_work_group`] with a cooperative stop probe —
    /// same contract as [`Queue::parallel_for_until`].
    // sigmo-lint: allow(wall-clock-in-result) — wall_time is display-only,
    // excluded from determinism keys (see `parallel_for_chunks_until`).
    // sigmo-lint: allow(relaxed-read-in-report) — `skipped` is read after
    // the parallel bridge joined; no writer remains.
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_for_work_group_until<S, F>(
        &self,
        name: &str,
        phase: &str,
        num_groups: usize,
        work_group_size: usize,
        local_words: usize,
        stop: S,
        body: F,
    ) -> CounterSnapshot
    where
        S: Fn() -> bool + Sync,
        F: Fn(&mut WorkGroupCtx<'_>) + Sync,
    {
        let counters = KernelCounters::new();
        let skipped = AtomicUsize::new(0);
        let start = Instant::now();
        (0..num_groups).into_par_iter().for_each_init(
            || LocalMem::new(local_words),
            |local, g| {
                if stop() {
                    skipped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                local.clear();
                let mut ctx = WorkGroupCtx {
                    group_id: g,
                    group_size: work_group_size,
                    local,
                    counters: &counters,
                };
                body(&mut ctx);
            },
        );
        let wall = start.elapsed();
        let snap = counters.snapshot();
        let skipped = skipped.load(Ordering::Relaxed);
        self.records.lock().push(KernelRecord {
            name: name.to_string(),
            phase: phase.to_string(),
            global_size: num_groups * work_group_size,
            work_group_size,
            wall_time: wall,
            counters: snap,
            cancelled: skipped > 0 || stop(),
            skipped_groups: skipped,
        });
        snap
    }

    /// Records a host↔device transfer (Figure 2's data-movement arrows):
    /// a pseudo-kernel in phase `"transfer"` whose byte counters the cost
    /// model prices against the PCIe bandwidth instead of HBM.
    pub fn record_transfer(&self, name: &str, bytes_to_device: u64, bytes_to_host: u64) {
        let counters = KernelCounters::new();
        counters.add_bytes_read(bytes_to_device);
        counters.add_bytes_written(bytes_to_host);
        self.records.lock().push(KernelRecord {
            name: name.to_string(),
            phase: "transfer".to_string(),
            global_size: 0,
            work_group_size: 1,
            wall_time: Duration::ZERO,
            counters: counters.snapshot(),
            cancelled: false,
            skipped_groups: 0,
        });
    }

    /// All kernel records in launch order.
    pub fn records(&self) -> Vec<KernelRecord> {
        self.records.lock().clone()
    }

    /// Clears the kernel record log.
    pub fn clear_records(&self) {
        self.records.lock().clear();
    }

    /// Total real wall-clock time across recorded kernels, per phase tag.
    pub fn phase_wall_time(&self, phase: &str) -> Duration {
        self.records
            .lock()
            .iter()
            .filter(|r| r.phase == phase)
            .map(|r| r.wall_time)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn queue() -> Queue {
        Queue::new(DeviceProfile::host())
    }

    #[test]
    fn parallel_for_visits_every_item_once() {
        let q = queue();
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        q.parallel_for("k", "test", n, 128, |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_handles_non_divisible_sizes() {
        let q = queue();
        let n = 1001;
        let count = AtomicU64::new(0);
        q.parallel_for("k", "test", n, 128, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), n as u64);
    }

    #[test]
    fn parallel_for_zero_items_is_fine() {
        let q = queue();
        q.parallel_for("k", "test", 0, 64, |_, _| panic!("no items expected"));
        assert_eq!(q.records()[0].global_size, 0);
    }

    #[test]
    fn chunk_dispatch_partitions_the_range_exactly() {
        let q = queue();
        let n = 1001;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let groups = AtomicU64::new(0);
        q.parallel_for_chunks_until(
            "k",
            "test",
            n,
            128,
            || false,
            |items, c| {
                groups.fetch_add(1, Ordering::Relaxed);
                assert!(items.len() <= 128 && !items.is_empty());
                c.add_instructions(1); // once per *group*, not per item
                for i in items {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let recs = q.records();
        assert_eq!(recs[0].global_size, n, "records the exact ND-range size");
        assert_eq!(
            recs[0].counters.instructions,
            groups.load(Ordering::Relaxed)
        );
        assert_eq!(groups.load(Ordering::Relaxed), 8); // ceil(1001 / 128)
    }

    #[test]
    fn work_group_kernel_gets_private_local_memory() {
        let q = queue();
        let n_groups = 64;
        q.parallel_for_work_group("k", "test", n_groups, 4, 8, |ctx| {
            // Local memory starts zeroed for every group.
            assert!(ctx.local.words().iter().all(|&w| w == 0));
            ctx.local.words_mut()[0] = ctx.group_id as u64 + 1;
            assert_eq!(ctx.local.words()[0], ctx.group_id as u64 + 1);
        });
    }

    #[test]
    fn counters_flow_into_records() {
        let q = queue();
        q.parallel_for("counted", "filter", 100, 32, |_, c| {
            c.add_instructions(10);
            c.add_bytes_read(4);
        });
        let recs = q.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].counters.instructions, 1000);
        assert_eq!(recs[0].counters.bytes_read, 400);
        assert_eq!(recs[0].name, "counted");
        assert_eq!(recs[0].phase, "filter");
    }

    #[test]
    fn phase_wall_time_sums_matching_records() {
        let q = queue();
        q.parallel_for("a", "filter", 10, 4, |_, _| {});
        q.parallel_for("b", "join", 10, 4, |_, _| {});
        q.parallel_for("c", "filter", 10, 4, |_, _| {});
        assert_eq!(q.records().len(), 3);
        assert!(q.phase_wall_time("filter") >= q.records()[0].wall_time);
    }

    #[test]
    fn clear_records_empties_log() {
        let q = queue();
        q.parallel_for("a", "x", 1, 1, |_, _| {});
        q.clear_records();
        assert!(q.records().is_empty());
    }

    #[test]
    fn untripped_stop_probe_changes_nothing() {
        let q = queue();
        let n = 1000;
        let count = AtomicU64::new(0);
        q.parallel_for_until(
            "k",
            "test",
            n,
            64,
            || false,
            |_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), n as u64);
        let rec = &q.records()[0];
        assert!(!rec.cancelled);
        assert_eq!(rec.skipped_groups, 0);
    }

    #[test]
    fn tripped_stop_probe_skips_every_group_and_marks_record() {
        let q = queue();
        q.parallel_for_until(
            "k",
            "test",
            1000,
            64,
            || true,
            |_, _| panic!("no work-item should run under a tripped probe"),
        );
        let rec = &q.records()[0];
        assert!(rec.cancelled);
        assert_eq!(rec.skipped_groups, 1000usize.div_ceil(64));
    }

    #[test]
    fn work_group_stop_probe_skips_groups_once_tripped() {
        let q = queue();
        let ran = AtomicU64::new(0);
        // Trip after the first few groups have been observed: every group
        // that starts increments `ran`; the probe trips once ran >= 4.
        q.parallel_for_work_group_until(
            "k",
            "test",
            256,
            4,
            0,
            || ran.load(Ordering::Relaxed) >= 4,
            |_ctx| {
                ran.fetch_add(1, Ordering::Relaxed);
            },
        );
        let rec = &q.records()[0];
        assert!(rec.cancelled);
        assert!(rec.skipped_groups > 0, "some groups must be skipped");
        assert_eq!(
            rec.skipped_groups as u64 + ran.load(Ordering::Relaxed),
            256,
            "every group either ran or was skipped"
        );
    }

    #[test]
    fn transfer_records_are_never_cancelled() {
        let q = queue();
        q.record_transfer("h2d", 128, 0);
        let rec = &q.records()[0];
        assert!(!rec.cancelled);
        assert_eq!(rec.skipped_groups, 0);
    }
}
