//! Device profiles: the hardware parameters of the three GPU platforms the
//! paper evaluates (Table 1, §5.3) expressed for the analytical cost model.

use serde::{Deserialize, Serialize};

/// Which real device a profile mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// NVIDIA V100S (the paper's primary single-GPU platform).
    NvidiaV100S,
    /// AMD MI100.
    AmdMi100,
    /// Intel Data Center GPU Max 1100.
    IntelMax1100,
    /// NVIDIA A100 (the paper's cluster nodes carry four each).
    NvidiaA100,
    /// The host CPU itself (used when measuring real wall-clock only).
    Host,
}

/// Analytical description of a device.
///
/// Numbers are taken from the paper's §5.3 where stated (peak TFLOPS,
/// sub-group width) and from public spec sheets otherwise. They feed the
/// [`crate::CostModel`], which converts kernel operation counts into
/// simulated kernel times, occupancy, and roofline coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Which device this mirrors.
    pub kind: DeviceKind,
    /// Number of compute units (SMs / CUs / Xe-cores).
    pub compute_units: u32,
    /// Sub-group (warp / wavefront / SIMD) width in work-items.
    /// Paper §5.3: 32 for NVIDIA, 64 for AMD, 16 for Intel.
    pub sub_group_size: u32,
    /// Maximum resident work-items per compute unit.
    pub max_work_items_per_cu: u32,
    /// Maximum work-group size.
    pub max_work_group_size: u32,
    /// Peak instruction throughput in giga-instructions per second
    /// (scaled from the paper's quoted TFLOPS figures).
    pub peak_ginstr_per_s: f64,
    /// HBM bandwidth in GB/s.
    pub mem_bandwidth_gb_s: f64,
    /// L2 bandwidth in GB/s (used for the instruction-roofline L2 roof).
    pub l2_bandwidth_gb_s: f64,
    /// L1 aggregate bandwidth in GB/s (L1 roof).
    pub l1_bandwidth_gb_s: f64,
    /// Fixed kernel-launch + host-synchronization overhead in microseconds.
    /// The filter phase pays this once per refinement iteration per kernel
    /// (§4.4: "divided into multiple refinement iterations, each separated
    /// by host-side synchronization").
    pub launch_overhead_us: f64,
    /// Device memory capacity in GiB (Figure 12's out-of-memory point).
    pub memory_gib: f64,
    /// Host↔device interconnect bandwidth in GB/s (PCIe for the discrete
    /// GPUs; Figure 2's data-movement arrows are charged against this).
    pub pcie_bandwidth_gb_s: f64,
}

impl DeviceProfile {
    /// NVIDIA V100S: 130 TFLOPS (paper), 32 GiB HBM2, 80 SMs, warp 32.
    pub fn nvidia_v100s() -> Self {
        Self {
            name: "NVIDIA V100S",
            kind: DeviceKind::NvidiaV100S,
            compute_units: 80,
            sub_group_size: 32,
            max_work_items_per_cu: 2048,
            max_work_group_size: 1024,
            peak_ginstr_per_s: 2032.0, // 80 SM * 4 sched * 32 lanes * 1.6 GHz / 8 (issue model)
            mem_bandwidth_gb_s: 1134.0,
            l2_bandwidth_gb_s: 2500.0,
            l1_bandwidth_gb_s: 12000.0,
            launch_overhead_us: 8.0,
            memory_gib: 32.0,
            pcie_bandwidth_gb_s: 16.0,
        }
    }

    /// AMD MI100: 180 TFLOPS (paper), 32 GiB, 120 CUs, wavefront 64.
    pub fn amd_mi100() -> Self {
        Self {
            name: "AMD MI100",
            kind: DeviceKind::AmdMi100,
            compute_units: 120,
            sub_group_size: 64,
            max_work_items_per_cu: 2560,
            max_work_group_size: 1024,
            peak_ginstr_per_s: 2765.0,
            mem_bandwidth_gb_s: 1228.0,
            l2_bandwidth_gb_s: 3000.0,
            l1_bandwidth_gb_s: 14000.0,
            launch_overhead_us: 10.0,
            memory_gib: 32.0,
            pcie_bandwidth_gb_s: 32.0,
        }
    }

    /// Intel Max 1100: 22 TFLOPS (paper), 48 GiB, 56 Xe-cores, SIMD 16.
    /// Lower compute peak but relatively strong bandwidth — the paper notes
    /// Intel wins when the workload is memory-bound (§5.3).
    pub fn intel_max1100() -> Self {
        Self {
            name: "Intel Max 1100",
            kind: DeviceKind::IntelMax1100,
            compute_units: 56,
            sub_group_size: 16,
            max_work_items_per_cu: 1024,
            max_work_group_size: 1024,
            peak_ginstr_per_s: 470.0,
            mem_bandwidth_gb_s: 1229.0,
            l2_bandwidth_gb_s: 3200.0,
            l1_bandwidth_gb_s: 9000.0,
            launch_overhead_us: 14.0,
            memory_gib: 48.0,
            pcie_bandwidth_gb_s: 32.0,
        }
    }

    /// NVIDIA A100 (cluster nodes): 40 GiB variant.
    pub fn nvidia_a100() -> Self {
        Self {
            name: "NVIDIA A100",
            kind: DeviceKind::NvidiaA100,
            compute_units: 108,
            sub_group_size: 32,
            max_work_items_per_cu: 2048,
            max_work_group_size: 1024,
            peak_ginstr_per_s: 3121.0,
            mem_bandwidth_gb_s: 1555.0,
            l2_bandwidth_gb_s: 4000.0,
            l1_bandwidth_gb_s: 19000.0,
            launch_overhead_us: 7.0,
            memory_gib: 40.0,
            pcie_bandwidth_gb_s: 32.0,
        }
    }

    /// The host CPU (no simulation; real wall-clock measurements only).
    pub fn host() -> Self {
        Self {
            name: "Host CPU",
            kind: DeviceKind::Host,
            compute_units: std::thread::available_parallelism()
                .map(|p| p.get() as u32)
                .unwrap_or(8),
            sub_group_size: 8,
            max_work_items_per_cu: 2,
            max_work_group_size: 1024,
            peak_ginstr_per_s: 100.0,
            mem_bandwidth_gb_s: 50.0,
            l2_bandwidth_gb_s: 200.0,
            l1_bandwidth_gb_s: 1000.0,
            launch_overhead_us: 0.5,
            memory_gib: 64.0,
            pcie_bandwidth_gb_s: 100.0,
        }
    }

    /// The three portability-study profiles in the paper's §5.3 order.
    pub fn portability_trio() -> [DeviceProfile; 3] {
        [
            DeviceProfile::nvidia_v100s(),
            DeviceProfile::amd_mi100(),
            DeviceProfile::intel_max1100(),
        ]
    }

    /// Maximum concurrently resident work-items on the whole device.
    pub fn max_resident_work_items(&self) -> u64 {
        self.compute_units as u64 * self.max_work_items_per_cu as u64
    }

    /// Device memory capacity in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.memory_gib * (1u64 << 30) as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_group_sizes_match_paper() {
        assert_eq!(DeviceProfile::nvidia_v100s().sub_group_size, 32);
        assert_eq!(DeviceProfile::amd_mi100().sub_group_size, 64);
        assert_eq!(DeviceProfile::intel_max1100().sub_group_size, 16);
    }

    #[test]
    fn compute_peak_ordering_matches_paper() {
        // Paper §5.3: Intel 22 TFLOPS < V100S 130 < MI100 180.
        let v = DeviceProfile::nvidia_v100s().peak_ginstr_per_s;
        let a = DeviceProfile::amd_mi100().peak_ginstr_per_s;
        let i = DeviceProfile::intel_max1100().peak_ginstr_per_s;
        assert!(i < v && v < a);
    }

    #[test]
    fn intel_bandwidth_competitive_despite_low_compute() {
        // §5.3: "Intel's higher memory bandwidth enables it to outperform"
        // when memory-bound.
        let v = DeviceProfile::nvidia_v100s();
        let i = DeviceProfile::intel_max1100();
        assert!(i.mem_bandwidth_gb_s >= v.mem_bandwidth_gb_s);
    }

    #[test]
    fn memory_capacities() {
        assert_eq!(DeviceProfile::nvidia_v100s().memory_bytes(), 32 << 30);
        assert_eq!(DeviceProfile::intel_max1100().memory_bytes(), 48 << 30);
    }

    #[test]
    fn resident_work_items_positive() {
        for p in DeviceProfile::portability_trio() {
            assert!(p.max_resident_work_items() > 0);
            assert!(p.max_work_group_size >= p.sub_group_size);
        }
    }
}
