//! Dynamic (self-scheduling) load balancing — the improvement the paper
//! points at when discussing its 4–8% static-partitioning runtime spread
//! (§5.4.2, citing LB4OMP-style adaptive scheduling).
//!
//! Molecules are split into chunks; ranks pull the next chunk as they
//! finish (classic self-scheduling / list scheduling). Chunk costs come
//! from the same engine + cost-model pipeline the static simulator uses,
//! so the two schedulers are directly comparable on makespan and CoV.

use rayon::prelude::*;
use sigmo_core::{Engine, EngineConfig, MatchMode};
use sigmo_device::{CostModel, DeviceProfile, Queue};
use sigmo_graph::LabeledGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a dynamically scheduled cluster run.
#[derive(Debug)]
pub struct DynamicReport {
    /// Per-rank busy time (seconds) after all chunks are drained.
    pub rank_times_s: Vec<f64>,
    /// Chunks processed per rank.
    pub rank_chunks: Vec<usize>,
    /// Total matches.
    pub total_matches: u64,
    /// Makespan (slowest rank).
    pub makespan_s: f64,
    /// Coefficient of variation of rank busy times.
    pub coefficient_of_variation: f64,
    /// Number of chunks the workload was split into.
    pub num_chunks: usize,
}

impl DynamicReport {
    /// Matches per second over the makespan.
    pub fn throughput(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.total_matches as f64 / self.makespan_s
        }
    }
}

/// Configuration of the dynamic scheduler.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Number of virtual ranks.
    pub num_ranks: usize,
    /// Molecules per chunk (smaller = better balance, more scheduling
    /// overhead).
    pub chunk_size: usize,
    /// Per-chunk dispatch overhead in seconds (models the MPI work-queue
    /// round-trip a real implementation would pay).
    pub dispatch_overhead_s: f64,
    /// Device profile per rank.
    pub device: DeviceProfile,
    /// Engine configuration.
    pub engine: EngineConfig,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            num_ranks: 16,
            chunk_size: 32,
            dispatch_overhead_s: 2e-4,
            device: DeviceProfile::nvidia_a100(),
            engine: EngineConfig::default(),
        }
    }
}

/// Runs the dynamically scheduled cluster simulation.
pub fn run_dynamic(
    config: &DynamicConfig,
    queries: &[LabeledGraph],
    data: &[LabeledGraph],
) -> DynamicReport {
    assert!(config.num_ranks > 0 && config.chunk_size > 0);
    let chunks: Vec<&[LabeledGraph]> = data.chunks(config.chunk_size).collect();
    let model = CostModel::new(config.device.clone());
    // Cost every chunk (parallel over host cores; rank assignment below is
    // a deterministic list-scheduling simulation).
    let costs: Vec<(u64, f64)> = chunks
        .par_iter()
        .map(|chunk| {
            let queue = Queue::new(config.device.clone());
            let engine = Engine::new(config.engine.clone());
            let report = engine.run(queries, chunk, &queue);
            let matches = match config.engine.mode {
                MatchMode::FindAll => report.total_matches,
                MatchMode::FindFirst => report.matched_pairs,
            };
            (matches, model.total_time_s(&queue.records()))
        })
        .collect();

    // Self-scheduling: each chunk goes to the earliest-free rank, in chunk
    // order (the order molecules arrive from the dataset).
    let mut heap: BinaryHeap<(Reverse<u64>, usize)> =
        (0..config.num_ranks).map(|r| (Reverse(0u64), r)).collect();
    let to_ns = |s: f64| (s * 1e9) as u64;
    let mut rank_times = vec![0u64; config.num_ranks];
    let mut rank_chunks = vec![0usize; config.num_ranks];
    let mut total_matches = 0u64;
    for &(matches, cost_s) in &costs {
        let (Reverse(free_at), rank) = heap.pop().expect("ranks nonempty");
        let finish = free_at + to_ns(cost_s + config.dispatch_overhead_s);
        rank_times[rank] = finish;
        rank_chunks[rank] += 1;
        total_matches += matches;
        heap.push((Reverse(finish), rank));
    }
    let rank_times_s: Vec<f64> = rank_times.iter().map(|&ns| ns as f64 / 1e9).collect();
    let makespan_s = rank_times_s.iter().cloned().fold(0.0, f64::max);
    let busy: Vec<f64> = rank_times_s.clone();
    // sigmo-lint: allow(float-accumulation) — sequential fold over the
    // rank-indexed times vector; summation order is fixed by construction.
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    let cov = if mean <= f64::EPSILON {
        0.0
    } else {
        // sigmo-lint: allow(float-accumulation) — same fixed rank order.
        (busy.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / busy.len() as f64).sqrt() / mean
    };
    DynamicReport {
        rank_times_s,
        rank_chunks,
        total_matches,
        makespan_s,
        coefficient_of_variation: cov,
        num_chunks: chunks.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ClusterConfig, ClusterSim};
    use sigmo_mol::Dataset;

    fn world() -> (Vec<LabeledGraph>, Vec<LabeledGraph>) {
        let d = Dataset::small(13);
        (d.queries()[..6].to_vec(), d.data_graphs().to_vec())
    }

    fn dyn_config(ranks: usize) -> DynamicConfig {
        DynamicConfig {
            num_ranks: ranks,
            chunk_size: 8,
            engine: EngineConfig {
                refinement_iterations: 3,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn dynamic_total_equals_static_total() {
        let (queries, data) = world();
        let dynamic = run_dynamic(&dyn_config(4), &queries, &data);
        let mut engine = EngineConfig::default();
        engine.refinement_iterations = 3;
        let stat = ClusterSim::new(ClusterConfig {
            num_ranks: 4,
            engine,
            ..Default::default()
        })
        .run(&queries, &data);
        assert_eq!(dynamic.total_matches, stat.total_matches);
    }

    #[test]
    fn all_chunks_processed() {
        let (queries, data) = world();
        let cfg = dyn_config(5);
        let report = run_dynamic(&cfg, &queries, &data);
        assert_eq!(report.num_chunks, data.len().div_ceil(cfg.chunk_size));
        assert_eq!(report.rank_chunks.iter().sum::<usize>(), report.num_chunks);
    }

    #[test]
    fn dynamic_beats_static_on_skewed_workloads() {
        // Build a deliberately skewed corpus: many cheap molecules up
        // front, all the expensive ones clustered at the tail — the worst
        // case for static block partitioning, the motivating case for the
        // paper's adaptive-load-balancing remark.
        use sigmo_mol::{GeneratorConfig, MoleculeGenerator};
        let mut small_gen = MoleculeGenerator::new(
            GeneratorConfig {
                min_heavy_atoms: 4,
                max_heavy_atoms: 8,
                ..Default::default()
            },
            1,
        );
        let mut big_gen = MoleculeGenerator::new(
            GeneratorConfig {
                min_heavy_atoms: 40,
                max_heavy_atoms: 60,
                ..Default::default()
            },
            2,
        );
        let mut data: Vec<LabeledGraph> = small_gen
            .generate_batch(90)
            .iter()
            .map(|m| m.to_labeled_graph())
            .collect();
        data.extend(
            big_gen
                .generate_batch(30)
                .iter()
                .map(|m| m.to_labeled_graph()),
        );
        let queries: Vec<LabeledGraph> = sigmo_mol::functional_groups()
            .into_iter()
            .take(8)
            .map(|q| q.graph)
            .collect();

        let ranks = 4;
        let engine = EngineConfig {
            refinement_iterations: 3,
            ..Default::default()
        };
        // Zero the fixed launch/dispatch overheads and shrink the device
        // so even chunk-sized launches saturate it: at this miniature
        // scale a full A100 would be overhead- and occupancy-dominated,
        // masking the property under test — schedule quality on
        // heterogeneous work. (The paper's real chunks are ~500k
        // molecules, which saturate a real A100 the same way.)
        let mut device = DeviceProfile::nvidia_a100();
        device.launch_overhead_us = 0.0;
        device.compute_units = 2;
        device.max_work_items_per_cu = 64;
        let dynamic = run_dynamic(
            &DynamicConfig {
                num_ranks: ranks,
                chunk_size: 5,
                dispatch_overhead_s: 0.0,
                device: device.clone(),
                engine: engine.clone(),
            },
            &queries,
            &data,
        );
        let stat = ClusterSim::new(ClusterConfig {
            num_ranks: ranks,
            device,
            engine,
        })
        .run(&queries, &data);
        assert_eq!(dynamic.total_matches, stat.total_matches);
        assert!(
            dynamic.makespan_s < stat.makespan_s,
            "dynamic makespan {} must beat static {} on skewed data",
            dynamic.makespan_s,
            stat.makespan_s
        );
    }

    #[test]
    fn single_rank_makespan_is_sum_of_chunks() {
        let (queries, data) = world();
        let report = run_dynamic(&dyn_config(1), &queries, &data);
        assert!((report.rank_times_s[0] - report.makespan_s).abs() < 1e-12);
        assert_eq!(report.rank_chunks[0], report.num_chunks);
    }
}
