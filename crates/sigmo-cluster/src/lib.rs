//! Multi-rank weak-scaling simulation (paper §5.4.2, Figures 13–14).
//!
//! The paper runs SIGMo on an HPC cluster of up to 256 NVIDIA A100 GPUs:
//! one MPI process per GPU, **static partitioning** of 500,000 molecules
//! per GPU, a fixed query set, and per-rank runtimes whose spread (CoV of
//! 4–8%) comes from workload differences between partitions. This crate
//! reproduces that protocol with *virtual ranks*: each rank runs the full
//! SIGMo pipeline on its partition and is timed by the analytical device
//! model (A100 profile), so 256 ranks fit on one workstation.

pub mod dynamic;
pub mod fault;
pub mod partition;
pub mod sim;
pub mod topology;

pub use dynamic::{run_dynamic, DynamicConfig, DynamicReport};
pub use fault::{
    AttemptOutcome, FaultClusterReport, FaultPlan, RetryPolicy, ShardAttempt, ShardOutcome,
};
pub use partition::static_block_partition;
pub use sim::{ClusterConfig, ClusterReport, ClusterSim, RankResult};
pub use topology::{replica_placement, run_on_topology, CommModel, Topology, TopologyReport};
