//! Static partitioning of a molecule corpus across ranks.

use sigmo_graph::LabeledGraph;

/// Splits `data` into `num_ranks` contiguous blocks — the paper's static
/// partitioning ("we used static partitioning on the ZINC dataset,
/// assigning 500,000 molecules to each GPU"). Sizes differ by at most one.
///
/// Panics if `num_ranks == 0`.
pub fn static_block_partition(data: &[LabeledGraph], num_ranks: usize) -> Vec<Vec<LabeledGraph>> {
    assert!(num_ranks > 0, "need at least one rank");
    let n = data.len();
    let base = n / num_ranks;
    let extra = n % num_ranks;
    let mut out = Vec::with_capacity(num_ranks);
    let mut pos = 0usize;
    for r in 0..num_ranks {
        let len = base + usize::from(r < extra);
        out.push(data[pos..pos + len].to_vec());
        pos += len;
    }
    debug_assert_eq!(pos, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graphs(n: usize) -> Vec<LabeledGraph> {
        (0..n)
            .map(|i| LabeledGraph::with_uniform_labels(1 + (i % 3), 1))
            .collect()
    }

    #[test]
    fn even_split() {
        let parts = static_block_partition(&graphs(12), 4);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn uneven_split_differs_by_at_most_one() {
        let parts = static_block_partition(&graphs(10), 4);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn partition_preserves_order_and_content() {
        let data = graphs(7);
        let parts = static_block_partition(&data, 3);
        let flat: Vec<LabeledGraph> = parts.into_iter().flatten().collect();
        assert_eq!(flat, data);
    }

    #[test]
    fn more_ranks_than_graphs_leaves_empty_tails() {
        let parts = static_block_partition(&graphs(2), 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        static_block_partition(&graphs(1), 0);
    }
}
