//! Deterministic fault injection and retry for the cluster simulator.
//!
//! The paper's 256-GPU MPI deployment (§6, Fig. 14) uses static
//! partitioning with no recovery story: a crashed rank loses its shard and
//! a straggler stretches the barrier for everyone. This module injects
//! both fault classes *deterministically* (seeded, so every run of a test
//! sees the same faults) and adds the recovery protocol a production
//! deployment needs: failed shards are re-dispatched to surviving ranks
//! with bounded attempts and exponential backoff, all in simulated time.
//! [`FaultClusterReport::reconciled`] then certifies the invariant that
//! matters: an injected-fault run recovers the *exact* clean-run totals.
//!
//! Fault model:
//!
//! * **Rank crash** — the rank dies at dispatch: its shard's first attempt
//!   fails instantly and the rank never executes anything again (also not
//!   retries of other shards).
//! * **Straggler** — the rank completes its work, slowed by a constant
//!   factor (the paper's CoV tail, exaggerated).
//! * **Transient dispatch failure** — a shard's dispatch fails the first
//!   `k` times regardless of rank (network blips), exercising multi-round
//!   backoff.

use crate::partition::static_block_partition;
use crate::sim::ClusterSim;
use rayon::prelude::*;
use sigmo_core::{Engine, MatchMode};
use sigmo_device::{CostModel, Queue};
use sigmo_graph::LabeledGraph;
use std::collections::{BTreeMap, BTreeSet};

/// Which faults a cluster run will experience. Built deterministically
/// from a seed so fault runs are reproducible.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Total ranks the plan was drawn for (must match the sim config).
    pub num_ranks: usize,
    /// Ranks that crash at dispatch and stay dead for the whole run.
    pub crashed: BTreeSet<usize>,
    /// Straggler ranks and their slowdown factor (> 1.0).
    pub stragglers: BTreeMap<usize, f64>,
    /// Per-shard count of transient dispatch failures before success.
    pub transient_failures: BTreeMap<usize, usize>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none(num_ranks: usize) -> Self {
        Self {
            num_ranks,
            crashed: BTreeSet::new(),
            stragglers: BTreeMap::new(),
            transient_failures: BTreeMap::new(),
        }
    }

    /// Draws `crashes` crashed ranks and `stragglers` straggler ranks
    /// (disjoint sets) from a seeded shuffle of the rank ids. The same
    /// seed always selects the same ranks.
    pub fn seeded(
        seed: u64,
        num_ranks: usize,
        crashes: usize,
        stragglers: usize,
        slowdown: f64,
    ) -> Self {
        assert!(
            crashes + stragglers <= num_ranks,
            "cannot fault {} of {num_ranks} ranks",
            crashes + stragglers
        );
        assert!(slowdown >= 1.0, "a straggler is slower, not faster");
        let mut ids: Vec<usize> = (0..num_ranks).collect();
        let mut state = seed;
        // Seeded Fisher–Yates over rank ids (splitmix64 — no external RNG).
        for i in (1..ids.len()).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        let crashed: BTreeSet<usize> = ids[..crashes].iter().copied().collect();
        let straggler_map: BTreeMap<usize, f64> = ids[crashes..crashes + stragglers]
            .iter()
            .map(|&r| (r, slowdown))
            .collect();
        Self {
            num_ranks,
            crashed,
            stragglers: straggler_map,
            transient_failures: BTreeMap::new(),
        }
    }

    /// Adds `failures` transient dispatch failures to `shard` (it fails
    /// that many times on any rank before succeeding).
    pub fn with_transient(mut self, shard: usize, failures: usize) -> Self {
        self.transient_failures.insert(shard, failures);
        self
    }

    /// The slowdown factor of `rank` (1.0 when not a straggler).
    pub fn slowdown(&self, rank: usize) -> f64 {
        self.stragglers.get(&rank).copied().unwrap_or(1.0)
    }
}

/// splitmix64: tiny, deterministic, dependency-free PRNG step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Bounded-retry policy with exponential backoff in simulated time.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum dispatch attempts per shard (including the first).
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles every further retry.
    pub backoff_base_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_s: 0.5,
        }
    }
}

impl RetryPolicy {
    /// Simulated wait before retry number `retry` (1-based: the first
    /// retry waits the base, the second twice that, ...).
    ///
    /// Contract: `retry >= 1` — there is no backoff before the *first*
    /// attempt, so retry number 0 is a caller bug. It is flagged with a
    /// `debug_assert!` and clamped to 1 rather than panicking a release
    /// serving process mid-request. The doubling **saturates**: retry
    /// numbers whose power of two exceeds `f64`'s range return
    /// `f64::MAX`, never `inf`, so downstream simulated-time arithmetic
    /// (`failed_at + backoff`) stays finite and comparable.
    pub fn backoff_s(&self, retry: usize) -> f64 {
        debug_assert!(retry >= 1, "retry numbers are 1-based");
        let exp = retry.max(1) - 1;
        if exp >= f64::MAX_EXP as usize {
            return f64::MAX;
        }
        let backoff = self.backoff_base_s * 2f64.powi(exp as i32);
        if backoff.is_finite() {
            backoff
        } else {
            f64::MAX
        }
    }

    /// Integer-tick backoff for the virtual-clock serving simulator:
    /// `base_ticks` doubled per further retry, saturating at `u64::MAX`
    /// (same 1-based contract as [`RetryPolicy::backoff_s`]). Integer
    /// ticks keep the sharded serving schedule bit-deterministic — no
    /// float accumulation ever reaches the latency accounting.
    pub fn backoff_ticks(&self, base_ticks: u64, retry: usize) -> u64 {
        debug_assert!(retry >= 1, "retry numbers are 1-based");
        if base_ticks == 0 {
            return 0;
        }
        let exp = retry.max(1) - 1;
        if exp >= 64 {
            return u64::MAX;
        }
        base_ticks.saturating_mul(1u64 << exp)
    }
}

/// What one dispatch attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The target rank was crashed: the dispatch failed instantly.
    CrashedRank,
    /// Injected transient failure: the dispatch failed instantly.
    TransientFailure,
    /// The shard ran to completion on the target rank.
    Completed,
}

/// One dispatch attempt of one shard, in simulated time.
#[derive(Debug, Clone)]
pub struct ShardAttempt {
    /// 1-based attempt number.
    pub attempt: usize,
    /// Rank the shard was dispatched to.
    pub rank: usize,
    /// Backoff waited before this attempt (0 for the first).
    pub backoff_s: f64,
    /// Simulated time the attempt started executing.
    pub start_s: f64,
    /// Simulated execution time (0 for failed dispatches).
    pub duration_s: f64,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// Final outcome of one shard across all its attempts.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard id (== the rank that owns it under static partitioning).
    pub shard: usize,
    /// Molecules in the shard.
    pub molecules: usize,
    /// Matches contributed (0 unless some attempt completed).
    pub matches: u64,
    /// Every dispatch attempt, in order.
    pub attempts: Vec<ShardAttempt>,
    /// Whether some attempt completed.
    pub completed: bool,
}

/// Aggregate result of a fault-injected cluster run.
#[derive(Debug)]
pub struct FaultClusterReport {
    /// Per-shard outcomes, shard order.
    pub shards: Vec<ShardOutcome>,
    /// Total matches across completed shards.
    pub total_matches: u64,
    /// Simulated makespan including retries and backoff waits.
    pub makespan_s: f64,
    /// Ranks the plan crashed.
    pub injected_crashes: Vec<usize>,
    /// Ranks the plan slowed down.
    pub injected_stragglers: Vec<usize>,
    /// Shards that exhausted their attempts without completing.
    pub failed_shards: Vec<usize>,
    /// Total retry dispatches across all shards.
    pub total_retries: usize,
}

impl FaultClusterReport {
    /// True when every shard completed — the run's totals then equal a
    /// clean (fault-free) run's totals exactly.
    pub fn reconciled(&self) -> bool {
        self.failed_shards.is_empty()
    }

    /// Matches per simulated second over the makespan.
    pub fn throughput(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.total_matches as f64 / self.makespan_s
        }
    }
}

impl ClusterSim {
    /// Runs the workload under a [`FaultPlan`] and [`RetryPolicy`].
    ///
    /// Each shard's pipeline runs once on the host (the engine is
    /// deterministic, so a retry re-executing the same shard would produce
    /// identical results); the *schedule* — crashes, retries, backoff,
    /// straggler slowdown — plays out in simulated time. Retries are
    /// re-dispatched greedily to the least-loaded surviving rank (ties to
    /// the lowest rank id), making the whole schedule deterministic.
    pub fn run_with_faults(
        &self,
        queries: &[LabeledGraph],
        data: &[LabeledGraph],
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> FaultClusterReport {
        let cfg = self.config();
        assert_eq!(
            plan.num_ranks, cfg.num_ranks,
            "fault plan drawn for a different rank count"
        );
        assert!(policy.max_attempts >= 1);
        let parts = static_block_partition(data, cfg.num_ranks);
        let model = CostModel::new(cfg.device.clone());
        let engine_cfg = cfg.engine.clone();

        // Phase 0: compute every shard's matches and base simulated
        // duration once (reused for retries — the engine is deterministic).
        let shard_runs: Vec<(u64, f64)> = parts
            .par_iter()
            .map(|part| {
                if part.is_empty() {
                    return (0u64, 0.0);
                }
                let queue = Queue::new(cfg.device.clone());
                let engine = Engine::new(engine_cfg.clone());
                let report = engine.run(queries, part, &queue);
                let m = match engine_cfg.mode {
                    MatchMode::FindAll => report.total_matches,
                    MatchMode::FindFirst => report.matched_pairs,
                };
                (m, model.total_time_s(&queue.records()))
            })
            .collect();

        // Phase 1: first dispatch, every shard on its owning rank.
        let mut rank_clock = vec![0.0f64; cfg.num_ranks];
        let mut shards: Vec<ShardOutcome> = Vec::with_capacity(cfg.num_ranks);
        let mut pending: Vec<(usize, f64, usize)> = Vec::new(); // (shard, failure time, transient left)
        for (s, part) in parts.iter().enumerate() {
            let (matches, base_s) = shard_runs[s];
            let mut outcome = ShardOutcome {
                shard: s,
                molecules: part.len(),
                matches: 0,
                attempts: Vec::new(),
                completed: false,
            };
            let transient_left = plan.transient_failures.get(&s).copied().unwrap_or(0);
            if plan.crashed.contains(&s) {
                outcome.attempts.push(ShardAttempt {
                    attempt: 1,
                    rank: s,
                    backoff_s: 0.0,
                    start_s: 0.0,
                    duration_s: 0.0,
                    outcome: AttemptOutcome::CrashedRank,
                });
                pending.push((s, 0.0, transient_left));
            } else if transient_left > 0 {
                outcome.attempts.push(ShardAttempt {
                    attempt: 1,
                    rank: s,
                    backoff_s: 0.0,
                    start_s: 0.0,
                    duration_s: 0.0,
                    outcome: AttemptOutcome::TransientFailure,
                });
                pending.push((s, 0.0, transient_left - 1));
            } else {
                let duration = base_s * plan.slowdown(s);
                outcome.attempts.push(ShardAttempt {
                    attempt: 1,
                    rank: s,
                    backoff_s: 0.0,
                    start_s: 0.0,
                    duration_s: duration,
                    outcome: AttemptOutcome::Completed,
                });
                outcome.matches = matches;
                outcome.completed = true;
                rank_clock[s] += duration;
            }
            shards.push(outcome);
        }

        // Phase 2: retries, shard order — greedy least-loaded surviving
        // rank, exponential backoff from the last failure.
        let mut total_retries = 0usize;
        for (s, mut failed_at, mut transient_left) in pending {
            let (matches, base_s) = shard_runs[s];
            for attempt in 2..=policy.max_attempts {
                let backoff = policy.backoff_s(attempt - 1);
                let scheduled = failed_at + backoff;
                // Least-loaded surviving rank; ties to the lowest id.
                let Some(rank) = (0..cfg.num_ranks)
                    .filter(|r| !plan.crashed.contains(r))
                    .min_by(|&a, &b| rank_clock[a].total_cmp(&rank_clock[b]))
                else {
                    break; // every rank is dead: the shard cannot run
                };
                total_retries += 1;
                let start = scheduled.max(rank_clock[rank]);
                if transient_left > 0 {
                    transient_left -= 1;
                    failed_at = start;
                    shards[s].attempts.push(ShardAttempt {
                        attempt,
                        rank,
                        backoff_s: backoff,
                        start_s: start,
                        duration_s: 0.0,
                        outcome: AttemptOutcome::TransientFailure,
                    });
                    continue;
                }
                let duration = base_s * plan.slowdown(rank);
                shards[s].attempts.push(ShardAttempt {
                    attempt,
                    rank,
                    backoff_s: backoff,
                    start_s: start,
                    duration_s: duration,
                    outcome: AttemptOutcome::Completed,
                });
                shards[s].matches = matches;
                shards[s].completed = true;
                rank_clock[rank] = start + duration;
                break;
            }
        }

        let failed_shards: Vec<usize> = shards
            .iter()
            .filter(|o| !o.completed)
            .map(|o| o.shard)
            .collect();
        let total_matches = shards.iter().map(|o| o.matches).sum();
        let makespan_s = rank_clock.iter().cloned().fold(0.0, f64::max);
        FaultClusterReport {
            shards,
            total_matches,
            makespan_s,
            injected_crashes: plan.crashed.iter().copied().collect(),
            injected_stragglers: plan.stragglers.keys().copied().collect(),
            failed_shards,
            total_retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ClusterConfig;
    use sigmo_core::EngineConfig;
    use sigmo_mol::Dataset;

    fn small_world() -> (Vec<LabeledGraph>, Vec<LabeledGraph>) {
        let d = Dataset::small(7);
        (d.queries()[..6].to_vec(), d.data_graphs().to_vec())
    }

    fn sim(ranks: usize) -> ClusterSim {
        ClusterSim::new(ClusterConfig {
            num_ranks: ranks,
            engine: EngineConfig {
                refinement_iterations: 3,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff_base_s: 0.5,
        };
        // The documented doubling at small retry numbers.
        assert_eq!(policy.backoff_s(1), 0.5);
        assert_eq!(policy.backoff_s(2), 1.0);
        assert_eq!(policy.backoff_s(3), 2.0);
        // Doubling past f64's exponent range must saturate, not reach inf.
        for retry in [1_100, 10_000, usize::MAX] {
            let b = policy.backoff_s(retry);
            assert!(b.is_finite(), "backoff_s({retry}) must stay finite");
            assert_eq!(b, f64::MAX);
        }
        // Monotone non-decreasing across the saturation boundary.
        let mut last = 0.0;
        for retry in 1..2_000 {
            let b = policy.backoff_s(retry);
            assert!(b >= last, "backoff must never shrink (retry {retry})");
            last = b;
        }

        // The integer-tick variant saturates at u64::MAX the same way.
        assert_eq!(policy.backoff_ticks(4, 1), 4);
        assert_eq!(policy.backoff_ticks(4, 3), 16);
        assert_eq!(policy.backoff_ticks(1, 64), 1u64 << 63, "2^63 fits");
        assert_eq!(policy.backoff_ticks(1, 65), u64::MAX);
        assert_eq!(policy.backoff_ticks(3, 63), 3u64 << 62);
        assert_eq!(policy.backoff_ticks(u64::MAX, 2), u64::MAX);
        assert_eq!(policy.backoff_ticks(0, usize::MAX), 0, "zero base is free");
    }

    #[test]
    fn seeded_plan_is_deterministic_and_disjoint() {
        let a = FaultPlan::seeded(42, 16, 3, 2, 4.0);
        let b = FaultPlan::seeded(42, 16, 3, 2, 4.0);
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(
            a.stragglers.keys().collect::<Vec<_>>(),
            b.stragglers.keys().collect::<Vec<_>>()
        );
        assert_eq!(a.crashed.len(), 3);
        assert_eq!(a.stragglers.len(), 2);
        for r in a.stragglers.keys() {
            assert!(!a.crashed.contains(r), "crash/straggler sets overlap");
        }
        // A different seed draws a different crash set (16 choose 3 makes
        // a collision on this fixed pair essentially a broken shuffle).
        let c = FaultPlan::seeded(43, 16, 3, 2, 4.0);
        assert_ne!(a.crashed, c.crashed);
    }

    #[test]
    fn no_faults_matches_clean_run() {
        let (queries, data) = small_world();
        let s = sim(4);
        let clean = s.run(&queries, &data);
        let faulted = s.run_with_faults(
            &queries,
            &data,
            &FaultPlan::none(4),
            &RetryPolicy::default(),
        );
        assert!(faulted.reconciled());
        assert_eq!(faulted.total_matches, clean.total_matches);
        assert_eq!(faulted.total_retries, 0);
        assert!(faulted
            .shards
            .iter()
            .all(|o| o.attempts.len() == 1 && o.completed));
    }

    #[test]
    fn three_of_sixteen_crashes_reconcile_exactly() {
        // The acceptance scenario: 3 of 16 ranks crash (seeded); retry
        // recovers the clean-run total exactly, with per-rank attempts
        // and backoff recorded.
        let (queries, data) = small_world();
        let s = sim(16);
        let clean = s.run(&queries, &data);
        let plan = FaultPlan::seeded(0x516_0301, 16, 3, 0, 1.0);
        let report = s.run_with_faults(&queries, &data, &plan, &RetryPolicy::default());
        assert!(
            report.reconciled(),
            "failed shards: {:?}",
            report.failed_shards
        );
        assert_eq!(report.total_matches, clean.total_matches);
        assert_eq!(report.injected_crashes.len(), 3);
        assert_eq!(report.total_retries, 3, "one retry per crashed shard");
        for &r in &report.injected_crashes {
            let o = &report.shards[r];
            assert_eq!(o.attempts.len(), 2);
            assert_eq!(o.attempts[0].outcome, AttemptOutcome::CrashedRank);
            assert_eq!(o.attempts[1].outcome, AttemptOutcome::Completed);
            assert!(o.attempts[1].backoff_s > 0.0, "backoff must be recorded");
            assert!(
                !plan.crashed.contains(&o.attempts[1].rank),
                "retry landed on a dead rank"
            );
        }
    }

    #[test]
    fn transient_failures_back_off_exponentially() {
        let (queries, data) = small_world();
        let s = sim(4);
        let clean = s.run(&queries, &data);
        let plan = FaultPlan::none(4).with_transient(1, 2);
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff_base_s: 0.25,
        };
        let report = s.run_with_faults(&queries, &data, &plan, &policy);
        assert!(report.reconciled());
        assert_eq!(report.total_matches, clean.total_matches);
        let o = &report.shards[1];
        assert_eq!(o.attempts.len(), 3, "2 transient failures + 1 success");
        assert_eq!(o.attempts[1].backoff_s, 0.25);
        assert_eq!(o.attempts[2].backoff_s, 0.5, "backoff doubles");
        assert!(o.attempts[2].start_s >= o.attempts[1].start_s);
    }

    #[test]
    fn exhausted_attempts_leave_shard_failed_not_wrong() {
        let (queries, data) = small_world();
        let s = sim(4);
        let clean = s.run(&queries, &data);
        // More transient failures than the policy allows attempts.
        let plan = FaultPlan::none(4).with_transient(0, 10);
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 0.1,
        };
        let report = s.run_with_faults(&queries, &data, &plan, &policy);
        assert!(!report.reconciled());
        assert_eq!(report.failed_shards, vec![0]);
        assert!(
            report.total_matches < clean.total_matches,
            "a failed shard's matches must not be counted"
        );
        assert!(!report.shards[0].completed);
        assert_eq!(report.shards[0].matches, 0);
    }

    #[test]
    fn stragglers_stretch_the_makespan() {
        let (queries, data) = small_world();
        let s = sim(4);
        let clean = s.run_with_faults(
            &queries,
            &data,
            &FaultPlan::none(4),
            &RetryPolicy::default(),
        );
        let mut slowed = FaultPlan::none(4);
        slowed.stragglers.insert(0, 10.0);
        let report = s.run_with_faults(&queries, &data, &slowed, &RetryPolicy::default());
        assert!(report.reconciled());
        assert_eq!(report.total_matches, clean.total_matches);
        assert!(
            report.makespan_s > clean.makespan_s,
            "10x slowdown must stretch the makespan ({} vs {})",
            report.makespan_s,
            clean.makespan_s
        );
    }

    #[test]
    fn all_ranks_crashed_fails_every_shard_gracefully() {
        let (queries, data) = small_world();
        let s = sim(2);
        let plan = FaultPlan::seeded(7, 2, 2, 0, 1.0);
        let report = s.run_with_faults(&queries, &data, &plan, &RetryPolicy::default());
        assert!(!report.reconciled());
        assert_eq!(report.failed_shards, vec![0, 1]);
        assert_eq!(report.total_matches, 0);
    }
}
