//! The cluster simulator: virtual ranks running the SIGMo pipeline.

use crate::partition::static_block_partition;
use rayon::prelude::*;
use sigmo_core::{Engine, EngineConfig, MatchMode, QueryPlan};
use sigmo_device::{CostModel, DeviceProfile, Queue};
use sigmo_graph::{CsrGo, LabeledGraph};
use std::time::Duration;

/// Configuration of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of virtual ranks (one per simulated GPU).
    pub num_ranks: usize,
    /// Device profile each rank runs on (the paper's cluster uses A100s).
    pub device: DeviceProfile,
    /// Engine configuration shared by every rank.
    pub engine: EngineConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            num_ranks: 16,
            device: DeviceProfile::nvidia_a100(),
            engine: EngineConfig::default(),
        }
    }
}

/// Per-rank outcome.
#[derive(Debug, Clone)]
pub struct RankResult {
    /// Rank id (maps to "GPU ID" in Figure 14).
    pub rank: usize,
    /// Molecules assigned to this rank.
    pub molecules: usize,
    /// Embeddings (or matched pairs in Find First) found by this rank.
    pub matches: u64,
    /// Simulated device time for this rank's pipeline.
    pub sim_time_s: f64,
    /// Real host wall-clock spent executing the rank (diagnostic only).
    pub wall_time: Duration,
}

/// Aggregate outcome of a cluster run.
#[derive(Debug)]
pub struct ClusterReport {
    /// Per-rank results, rank order.
    pub ranks: Vec<RankResult>,
    /// Total matches across ranks.
    pub total_matches: u64,
    /// Makespan: the slowest rank's simulated time (all ranks start
    /// together under static partitioning; a final barrier ends the run).
    pub makespan_s: f64,
    /// Mean of per-rank simulated times.
    pub mean_rank_time_s: f64,
    /// Coefficient of variation of per-rank simulated times — the paper
    /// reports 4% (Find First) and 8% (Find All) at 256 GPUs.
    pub coefficient_of_variation: f64,
}

impl ClusterReport {
    /// Aggregate throughput in matches per second over the makespan
    /// (Figure 13b).
    pub fn throughput(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.total_matches as f64 / self.makespan_s
        }
    }
}

/// The cluster simulator.
pub struct ClusterSim {
    config: ClusterConfig,
}

impl ClusterSim {
    /// Creates a simulator.
    pub fn new(config: ClusterConfig) -> Self {
        Self { config }
    }

    /// The configuration this simulator runs with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs the workload: `data` is statically partitioned across ranks,
    /// every rank matches the full `queries` set against its partition.
    ///
    /// The query-side [`QueryPlan`] is built once on the host and shared
    /// (borrowed) by every rank — the real cluster broadcasts the plan
    /// alongside the query batch instead of rebuilding it per GPU.
    // sigmo-lint: allow(wall-clock-in-result) — per-rank wall_time is
    // display-only, excluded from determinism keys; the load-balance
    // metrics below key on the modeled sim_time_s instead.
    pub fn run(&self, queries: &[LabeledGraph], data: &[LabeledGraph]) -> ClusterReport {
        let parts = static_block_partition(data, self.config.num_ranks);
        let model = CostModel::new(self.config.device.clone());
        let engine_cfg = self.config.engine.clone();
        let plan = QueryPlan::build(queries, &engine_cfg);
        let ranks: Vec<RankResult> = parts
            .into_par_iter()
            .enumerate()
            .map(|(rank, part)| {
                let t0 = std::time::Instant::now();
                let queue = Queue::new(self.config.device.clone());
                let engine = Engine::new(engine_cfg.clone());
                let (matches, sim_time_s) = if part.is_empty() {
                    (0u64, 0.0)
                } else {
                    let report = engine.run_planned(&plan, &CsrGo::from_graphs(&part), &queue);
                    let m = match engine_cfg.mode {
                        MatchMode::FindAll => report.total_matches,
                        MatchMode::FindFirst => report.matched_pairs,
                    };
                    (m, model.total_time_s(&queue.records()))
                };
                RankResult {
                    rank,
                    molecules: part.len(),
                    matches,
                    sim_time_s,
                    wall_time: t0.elapsed(),
                }
            })
            .collect();
        let total_matches = ranks.iter().map(|r| r.matches).sum();
        let times: Vec<f64> = ranks.iter().map(|r| r.sim_time_s).collect();
        let makespan_s = times.iter().cloned().fold(0.0, f64::max);
        // sigmo-lint: allow(float-accumulation) — sequential fold over the
        // rank-indexed times vector (the indexed par collect above
        // preserves rank order), so summation order is fixed.
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let cov = if mean <= f64::EPSILON {
            0.0
        } else {
            // sigmo-lint: allow(float-accumulation) — same fixed rank order.
            let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
            var.sqrt() / mean
        };
        ClusterReport {
            ranks,
            total_matches,
            makespan_s,
            mean_rank_time_s: mean,
            coefficient_of_variation: cov,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmo_mol::Dataset;

    fn small_world() -> (Vec<LabeledGraph>, Vec<LabeledGraph>) {
        let d = Dataset::small(7);
        (d.queries()[..6].to_vec(), d.data_graphs().to_vec())
    }

    fn config(ranks: usize) -> ClusterConfig {
        ClusterConfig {
            num_ranks: ranks,
            engine: EngineConfig {
                refinement_iterations: 3,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn cluster_total_equals_single_rank_total() {
        let (queries, data) = small_world();
        let single = ClusterSim::new(config(1)).run(&queries, &data);
        let multi = ClusterSim::new(config(4)).run(&queries, &data);
        assert_eq!(single.total_matches, multi.total_matches);
        assert!(multi.total_matches > 0, "workload must produce matches");
    }

    #[test]
    fn ranks_cover_all_molecules() {
        let (queries, data) = small_world();
        let report = ClusterSim::new(config(8)).run(&queries, &data);
        let covered: usize = report.ranks.iter().map(|r| r.molecules).sum();
        assert_eq!(covered, data.len());
        assert_eq!(report.ranks.len(), 8);
    }

    #[test]
    fn weak_scaling_raises_throughput() {
        // Weak scaling: double the data with double the ranks; throughput
        // should grow (makespan stays roughly flat, matches double).
        let (queries, data) = small_world();
        let mut doubled = data.clone();
        doubled.extend(data.iter().cloned());
        let r1 = ClusterSim::new(config(2)).run(&queries, &data);
        let r2 = ClusterSim::new(config(4)).run(&queries, &doubled);
        assert_eq!(r2.total_matches, 2 * r1.total_matches);
        assert!(r2.throughput() > r1.throughput());
    }

    #[test]
    fn cov_is_small_but_nonzero_for_static_partitioning() {
        let (queries, data) = small_world();
        let report = ClusterSim::new(config(8)).run(&queries, &data);
        assert!(report.coefficient_of_variation >= 0.0);
        assert!(
            report.coefficient_of_variation < 0.5,
            "CoV {} should stay moderate for balanced partitions",
            report.coefficient_of_variation
        );
        assert!(report.makespan_s >= report.mean_rank_time_s);
    }

    #[test]
    fn find_first_counts_pairs() {
        let (queries, data) = small_world();
        let mut cfg = config(4);
        cfg.engine.mode = MatchMode::FindFirst;
        let first = ClusterSim::new(cfg).run(&queries, &data);
        let all = ClusterSim::new(config(4)).run(&queries, &data);
        assert!(first.total_matches <= all.total_matches);
        assert!(first.total_matches > 0);
    }
}
