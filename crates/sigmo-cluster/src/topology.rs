//! Hierarchical cluster topology: nodes × GPUs-per-node with a
//! communication model.
//!
//! The paper's cluster packs **four A100s per node** with Intel MPI across
//! nodes (§5.4.2). The flat simulator in [`crate::sim`] models compute
//! only; this module layers a result-aggregation cost on top — a
//! two-level reduction (intra-node over NVLink-class links, inter-node
//! over InfiniBand-class links) of each rank's match count / result
//! buffer, which is what the Find All execution must gather at the end.

use crate::sim::{ClusterConfig, ClusterReport, ClusterSim};
use sigmo_graph::LabeledGraph;

/// Communication parameters of the two-level reduction.
#[derive(Debug, Clone)]
pub struct CommModel {
    /// Per-message latency within a node (NVLink / shared memory), seconds.
    pub intra_latency_s: f64,
    /// Per-message latency across nodes (InfiniBand), seconds.
    pub inter_latency_s: f64,
    /// Intra-node bandwidth, bytes/second.
    pub intra_bandwidth: f64,
    /// Inter-node bandwidth, bytes/second.
    pub inter_bandwidth: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        Self {
            intra_latency_s: 5e-6,  // NVLink-class
            inter_latency_s: 2e-6,  // modern IB is latency-competitive,
            intra_bandwidth: 300e9, // but far narrower than NVLink
            inter_bandwidth: 25e9,
        }
    }
}

impl CommModel {
    /// Time for a binary-tree reduction of `bytes` per participant over
    /// `n` participants with the given latency/bandwidth.
    fn reduce_time(&self, n: usize, bytes: u64, latency: f64, bandwidth: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let rounds = (n as f64).log2().ceil();
        rounds * (latency + bytes as f64 / bandwidth)
    }
}

/// A cluster laid out as `nodes × gpus_per_node`.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node (the paper's machines have 4).
    pub gpus_per_node: usize,
    /// Communication model.
    pub comm: CommModel,
}

impl Topology {
    /// The paper's layout: 4 GPUs per node.
    pub fn paper_layout(total_gpus: usize) -> Self {
        assert!(total_gpus.is_multiple_of(4), "paper nodes hold 4 GPUs each");
        Self {
            nodes: total_gpus / 4,
            gpus_per_node: 4,
            comm: CommModel::default(),
        }
    }

    /// Total ranks.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Report of a topology-aware run: compute report + aggregation cost.
#[derive(Debug)]
pub struct TopologyReport {
    /// The underlying compute simulation.
    pub compute: ClusterReport,
    /// Intra-node reduction seconds.
    pub intra_reduce_s: f64,
    /// Inter-node reduction seconds.
    pub inter_reduce_s: f64,
}

impl TopologyReport {
    /// End-to-end makespan: compute + the two-level reduction.
    pub fn total_s(&self) -> f64 {
        self.compute.makespan_s + self.intra_reduce_s + self.inter_reduce_s
    }

    /// Throughput over the end-to-end time.
    pub fn throughput(&self) -> f64 {
        let t = self.total_s();
        if t <= 0.0 {
            0.0
        } else {
            self.compute.total_matches as f64 / t
        }
    }
}

/// Runs the compute simulation on the topology's total GPU count, then
/// charges the two-level result reduction. `result_bytes_per_match` sizes
/// the gathered payload (0 = count-only reduction, the Find First case;
/// Find All gathering full embeddings pays per match).
pub fn run_on_topology(
    topology: &Topology,
    engine: sigmo_core::EngineConfig,
    queries: &[LabeledGraph],
    data: &[LabeledGraph],
    result_bytes_per_match: u64,
) -> TopologyReport {
    let sim = ClusterSim::new(ClusterConfig {
        num_ranks: topology.total_gpus(),
        engine,
        ..Default::default()
    });
    let compute = sim.run(queries, data);
    // Payload: the worst rank's share of matches (balanced partitions make
    // per-rank payloads roughly total/ranks; use the max for a bound).
    let max_rank_matches = compute.ranks.iter().map(|r| r.matches).max().unwrap_or(0);
    let payload = 8 + max_rank_matches * result_bytes_per_match;
    let intra = topology.comm.reduce_time(
        topology.gpus_per_node,
        payload,
        topology.comm.intra_latency_s,
        topology.comm.intra_bandwidth,
    );
    // After intra-node reduction one representative per node holds up to
    // gpus_per_node × payload.
    let inter = topology.comm.reduce_time(
        topology.nodes,
        payload * topology.gpus_per_node as u64,
        topology.comm.inter_latency_s,
        topology.comm.inter_bandwidth,
    );
    TopologyReport {
        compute,
        intra_reduce_s: intra,
        inter_reduce_s: inter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmo_core::EngineConfig;
    use sigmo_mol::Dataset;

    fn world() -> (Vec<LabeledGraph>, Vec<LabeledGraph>) {
        let d = Dataset::small(21);
        (d.queries()[..5].to_vec(), d.data_graphs().to_vec())
    }

    #[test]
    fn paper_layout_shape() {
        let t = Topology::paper_layout(256);
        assert_eq!(t.nodes, 64);
        assert_eq!(t.gpus_per_node, 4);
        assert_eq!(t.total_gpus(), 256);
    }

    #[test]
    #[should_panic(expected = "4 GPUs each")]
    fn paper_layout_rejects_odd_counts() {
        Topology::paper_layout(10);
    }

    #[test]
    fn reduction_costs_are_positive_and_ordered() {
        let (queries, data) = world();
        let t = Topology::paper_layout(8);
        let report = run_on_topology(&t, EngineConfig::default(), &queries, &data, 8);
        assert!(report.intra_reduce_s > 0.0);
        assert!(report.inter_reduce_s > 0.0);
        assert!(report.total_s() > report.compute.makespan_s);
        // Gathering full results costs at least as much as a count-only
        // reduction.
        let count_only = run_on_topology(&t, EngineConfig::default(), &queries, &data, 0);
        assert!(report.total_s() >= count_only.total_s());
        assert_eq!(
            report.compute.total_matches,
            count_only.compute.total_matches
        );
    }

    #[test]
    fn more_nodes_pay_more_inter_node_rounds() {
        let (queries, data) = world();
        let small = run_on_topology(
            &Topology::paper_layout(8),
            EngineConfig::default(),
            &queries,
            &data,
            8,
        );
        let large = run_on_topology(
            &Topology::paper_layout(64),
            EngineConfig::default(),
            &queries,
            &data,
            8,
        );
        // log2(16 nodes) rounds vs log2(2 nodes) rounds; payloads shrink
        // with more ranks, so compare pure round counts via latency floor.
        assert!(large.inter_reduce_s > small.inter_reduce_s * 0.9);
    }

    #[test]
    fn reduce_time_degenerate_cases() {
        let c = CommModel::default();
        assert_eq!(c.reduce_time(1, 1000, 1e-6, 1e9), 0.0);
        assert!(c.reduce_time(2, 1000, 1e-6, 1e9) > 0.0);
    }
}
