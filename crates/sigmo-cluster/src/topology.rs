//! Hierarchical cluster topology: nodes × GPUs-per-node with a
//! communication model.
//!
//! The paper's cluster packs **four A100s per node** with Intel MPI across
//! nodes (§5.4.2). The flat simulator in [`crate::sim`] models compute
//! only; this module layers a result-aggregation cost on top — a
//! two-level reduction (intra-node over NVLink-class links, inter-node
//! over InfiniBand-class links) of each rank's match count / result
//! buffer, which is what the Find All execution must gather at the end.

use crate::sim::{ClusterConfig, ClusterReport, ClusterSim};
use sigmo_graph::LabeledGraph;

/// Communication parameters of the two-level reduction.
#[derive(Debug, Clone)]
pub struct CommModel {
    /// Per-message latency within a node (NVLink / shared memory), seconds.
    pub intra_latency_s: f64,
    /// Per-message latency across nodes (InfiniBand), seconds.
    pub inter_latency_s: f64,
    /// Intra-node bandwidth, bytes/second.
    pub intra_bandwidth: f64,
    /// Inter-node bandwidth, bytes/second.
    pub inter_bandwidth: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        Self {
            intra_latency_s: 5e-6,  // NVLink-class
            inter_latency_s: 2e-6,  // modern IB is latency-competitive,
            intra_bandwidth: 300e9, // but far narrower than NVLink
            inter_bandwidth: 25e9,
        }
    }
}

impl CommModel {
    /// Time for a binary-tree reduction of `bytes` per participant over
    /// `n` participants with the given latency/bandwidth.
    fn reduce_time(&self, n: usize, bytes: u64, latency: f64, bandwidth: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let rounds = (n as f64).log2().ceil();
        rounds * (latency + bytes as f64 / bandwidth)
    }
}

/// A cluster laid out as `nodes × gpus_per_node`.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node (the paper's machines have 4).
    pub gpus_per_node: usize,
    /// Communication model.
    pub comm: CommModel,
}

impl Topology {
    /// The paper's layout: 4 GPUs per node.
    pub fn paper_layout(total_gpus: usize) -> Self {
        assert!(total_gpus.is_multiple_of(4), "paper nodes hold 4 GPUs each");
        Self {
            nodes: total_gpus / 4,
            gpus_per_node: 4,
            comm: CommModel::default(),
        }
    }

    /// Total ranks.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Deterministic replica placement for `shard` over this topology's
    /// ranks; see [`replica_placement`].
    pub fn replica_ranks(&self, shard: usize, replicas: usize) -> Vec<usize> {
        replica_placement(self.total_gpus(), self.gpus_per_node, shard, replicas)
    }
}

/// Deterministic, failure-domain-aware replica placement over `num_ranks`
/// ranks grouped into nodes of `gpus_per_node`.
///
/// The primary of `shard` is `shard % num_ranks`; each further replica
/// sits one whole node away (the same GPU slot on the next node, wrapping
/// around), so that up to `nodes` replicas land on pairwise-distinct
/// nodes — a node-level failure then cannot take out every copy of a
/// shard. When the node stride cycles before enough distinct ranks are
/// found (more replicas than nodes, or `num_ranks` not a multiple of
/// `gpus_per_node`), the remaining replicas fill in from the next unused
/// rank ids ascending, keeping the placement total and deterministic.
pub fn replica_placement(
    num_ranks: usize,
    gpus_per_node: usize,
    shard: usize,
    replicas: usize,
) -> Vec<usize> {
    assert!(num_ranks >= 1 && gpus_per_node >= 1);
    assert!(
        (1..=num_ranks).contains(&replicas),
        "need 1..={num_ranks} replicas, got {replicas}"
    );
    let primary = shard % num_ranks;
    let mut out = vec![primary];
    // One node-stride per further replica: same slot, next node.
    let mut hop = 1usize;
    while out.len() < replicas && hop * gpus_per_node < num_ranks {
        let r = (primary + hop * gpus_per_node) % num_ranks;
        if !out.contains(&r) {
            out.push(r);
        }
        hop += 1;
    }
    // Fill: next unused rank ids, ascending from the primary.
    let mut next = (primary + 1) % num_ranks;
    while out.len() < replicas {
        if !out.contains(&next) {
            out.push(next);
        }
        next = (next + 1) % num_ranks;
    }
    out
}

/// Report of a topology-aware run: compute report + aggregation cost.
#[derive(Debug)]
pub struct TopologyReport {
    /// The underlying compute simulation.
    pub compute: ClusterReport,
    /// Intra-node reduction seconds.
    pub intra_reduce_s: f64,
    /// Inter-node reduction seconds.
    pub inter_reduce_s: f64,
}

impl TopologyReport {
    /// End-to-end makespan: compute + the two-level reduction.
    pub fn total_s(&self) -> f64 {
        self.compute.makespan_s + self.intra_reduce_s + self.inter_reduce_s
    }

    /// Throughput over the end-to-end time.
    pub fn throughput(&self) -> f64 {
        let t = self.total_s();
        if t <= 0.0 {
            0.0
        } else {
            self.compute.total_matches as f64 / t
        }
    }
}

/// Runs the compute simulation on the topology's total GPU count, then
/// charges the two-level result reduction. `result_bytes_per_match` sizes
/// the gathered payload (0 = count-only reduction, the Find First case;
/// Find All gathering full embeddings pays per match).
pub fn run_on_topology(
    topology: &Topology,
    engine: sigmo_core::EngineConfig,
    queries: &[LabeledGraph],
    data: &[LabeledGraph],
    result_bytes_per_match: u64,
) -> TopologyReport {
    let sim = ClusterSim::new(ClusterConfig {
        num_ranks: topology.total_gpus(),
        engine,
        ..Default::default()
    });
    let compute = sim.run(queries, data);
    // Payload: the worst rank's share of matches (balanced partitions make
    // per-rank payloads roughly total/ranks; use the max for a bound).
    let max_rank_matches = compute.ranks.iter().map(|r| r.matches).max().unwrap_or(0);
    let payload = 8 + max_rank_matches * result_bytes_per_match;
    let intra = topology.comm.reduce_time(
        topology.gpus_per_node,
        payload,
        topology.comm.intra_latency_s,
        topology.comm.intra_bandwidth,
    );
    // After intra-node reduction one representative per node holds up to
    // gpus_per_node × payload.
    let inter = topology.comm.reduce_time(
        topology.nodes,
        payload * topology.gpus_per_node as u64,
        topology.comm.inter_latency_s,
        topology.comm.inter_bandwidth,
    );
    TopologyReport {
        compute,
        intra_reduce_s: intra,
        inter_reduce_s: inter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmo_core::EngineConfig;
    use sigmo_mol::Dataset;

    fn world() -> (Vec<LabeledGraph>, Vec<LabeledGraph>) {
        let d = Dataset::small(21);
        (d.queries()[..5].to_vec(), d.data_graphs().to_vec())
    }

    #[test]
    fn paper_layout_shape() {
        let t = Topology::paper_layout(256);
        assert_eq!(t.nodes, 64);
        assert_eq!(t.gpus_per_node, 4);
        assert_eq!(t.total_gpus(), 256);
    }

    #[test]
    #[should_panic(expected = "4 GPUs each")]
    fn paper_layout_rejects_odd_counts() {
        Topology::paper_layout(10);
    }

    #[test]
    fn replica_placement_spreads_across_nodes() {
        // 16 ranks, 4 per node: replicas must land on distinct nodes as
        // long as there are nodes left, and on distinct ranks always.
        for shard in 0..32 {
            let ranks = replica_placement(16, 4, shard, 4);
            assert_eq!(ranks.len(), 4);
            assert_eq!(ranks[0], shard % 16, "primary owns the shard");
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "replica ranks must be distinct");
            let nodes: Vec<usize> = ranks.iter().map(|r| r / 4).collect();
            let mut unique_nodes = nodes.clone();
            unique_nodes.sort_unstable();
            unique_nodes.dedup();
            assert_eq!(unique_nodes.len(), 4, "one replica per node");
        }
        // Deterministic: same inputs, same placement.
        assert_eq!(
            replica_placement(16, 4, 5, 3),
            replica_placement(16, 4, 5, 3)
        );
    }

    #[test]
    fn replica_placement_fills_when_replicas_exceed_nodes() {
        // 8 ranks on 2 nodes but 5 replicas: node-disjointness is
        // impossible, the fill path must still yield 5 distinct ranks.
        let ranks = replica_placement(8, 4, 2, 5);
        assert_eq!(ranks.len(), 5);
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert_eq!(ranks[0], 2);
        assert_eq!(ranks[1], 6, "second replica is one node away");
        // Degenerate single-rank cluster: every shard maps to rank 0.
        assert_eq!(replica_placement(1, 4, 9, 1), vec![0]);
        // Via the topology wrapper.
        let t = Topology::paper_layout(8);
        assert_eq!(t.replica_ranks(2, 5), ranks);
    }

    #[test]
    fn reduction_costs_are_positive_and_ordered() {
        let (queries, data) = world();
        let t = Topology::paper_layout(8);
        let report = run_on_topology(&t, EngineConfig::default(), &queries, &data, 8);
        assert!(report.intra_reduce_s > 0.0);
        assert!(report.inter_reduce_s > 0.0);
        assert!(report.total_s() > report.compute.makespan_s);
        // Gathering full results costs at least as much as a count-only
        // reduction.
        let count_only = run_on_topology(&t, EngineConfig::default(), &queries, &data, 0);
        assert!(report.total_s() >= count_only.total_s());
        assert_eq!(
            report.compute.total_matches,
            count_only.compute.total_matches
        );
    }

    #[test]
    fn more_nodes_pay_more_inter_node_rounds() {
        let (queries, data) = world();
        let small = run_on_topology(
            &Topology::paper_layout(8),
            EngineConfig::default(),
            &queries,
            &data,
            8,
        );
        let large = run_on_topology(
            &Topology::paper_layout(64),
            EngineConfig::default(),
            &queries,
            &data,
            8,
        );
        // log2(16 nodes) rounds vs log2(2 nodes) rounds; payloads shrink
        // with more ranks, so compare pure round counts via latency floor.
        assert!(large.inter_reduce_s > small.inter_reduce_s * 0.9);
    }

    #[test]
    fn reduce_time_degenerate_cases() {
        let c = CommModel::default();
        assert_eq!(c.reduce_time(1, 1000, 1e-6, 1e9), 0.0);
        assert!(c.reduce_time(2, 1000, 1e-6, 1e9) > 0.0);
    }
}
