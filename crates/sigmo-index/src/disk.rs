//! The persistent index file: `SIGMOIDX`, version 1.
//!
//! Little-endian, fixed-width, offset-addressed — an mmap-friendly
//! layout: [`FrozenIndex::open`] validates structure and section
//! checksums over the raw buffer without copying or allocating
//! per-record, every accessor reads in place, and nothing in the read
//! path is `unsafe` (malformed bytes produce a clean
//! [`IndexFileError`], never UB). [`FrozenIndex::thaw`] rehydrates the
//! mutable [`MoleculeIndex`] (digests are read back verbatim — no
//! signature recompute) plus the stored molecule graphs.
//!
//! ```text
//! header   (32 B)  magic "SIGMOIDX" · version u32 · radius u32 ·
//!                  num_mols u32 · num_labels u32 · sections u32 · 0 u32
//! table    (6×32 B) per section: id u32 · 0 u32 · offset u64 ·
//!                  len u64 · fnv1a64 checksum u64
//! SCHEMA   (1)     n u32 · n×(shift u8, bits u8)   — node schema,
//!                  then the same for the pair-bucket schema
//! DIGESTS  (2)     num_mols × 64 B: flags u32 (bit0 = present) ·
//!                  node_count u32 · entry_off u32 · entry_count u32 ·
//!                  presence 4×u64 · all_sig u64 · all_pair u64
//! ENTRIES  (3)     per entry 24 B: label u32 · 0 u32 · sig u64 · pair u64
//! LABELS   (4)     256×(off u64, count u64) · flat ids u32
//! PAIRS    (5)     16×(off u64, count u64) · flat ids u32
//! GRAPHS   (6)     num_mols×(off u64, len u64) · blobs
//!                  (blob: nodes u32 · labels · edges u32 ·
//!                  per edge a u32 · b u32 · label u8)
//! ```
//!
//! Serialization *compacts*: tombstoned and absent slots are written as
//! absent (all-zero directory rows, no postings, no graph), so a
//! saved-and-reloaded index carries exactly the live corpus while
//! preserving every live molecule's id. Loading an absent-slot file
//! into a fresh store is supported (retired ids simply stay retired).

use crate::digest::{LabelEntry, MolDigest};
use crate::index::{MolId, MoleculeIndex};
use crate::IndexConfig;
use sigmo_core::schema::BitGroup;
use sigmo_core::{LabelSchema, Signature};
use sigmo_graph::LabeledGraph;

/// File magic: "SIGMOIDX".
pub const MAGIC: &[u8; 8] = b"SIGMOIDX";
/// Current format version. Version 1 files (no charge section in graph
/// blobs) remain readable; writes always produce the current version.
pub const VERSION: u32 = 2;

const HEADER_LEN: usize = 32;
const SECTION_COUNT: usize = 6;
const TABLE_ENTRY_LEN: usize = 32;
const DIGEST_ROW_LEN: usize = 64;
const ENTRY_LEN: usize = 24;
const DIR_ENTRY_LEN: usize = 16;

const SEC_SCHEMA: u32 = 1;
const SEC_DIGESTS: u32 = 2;
const SEC_ENTRIES: u32 = 3;
const SEC_LABELS: u32 = 4;
const SEC_PAIRS: u32 = 5;
const SEC_GRAPHS: u32 = 6;

/// Why an index file was rejected. Every variant is a clean load error:
/// the open path never panics on attacker-shaped bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexFileError {
    /// Shorter than the fixed header.
    TooShort,
    /// The first 8 bytes are not `SIGMOIDX`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// A section or record points past the end of the buffer.
    Truncated(&'static str),
    /// A section's FNV-1a checksum does not match (section id given).
    ChecksumMismatch(u32),
    /// Structurally invalid contents (reason given).
    Corrupt(&'static str),
}

impl std::fmt::Display for IndexFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexFileError::TooShort => write!(f, "index file shorter than its header"),
            IndexFileError::BadMagic => write!(f, "not a SIGMOIDX index file"),
            IndexFileError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported index version {v} (supported: 1..={VERSION})"
                )
            }
            IndexFileError::Truncated(what) => write!(f, "index file truncated: {what}"),
            IndexFileError::ChecksumMismatch(sec) => {
                write!(f, "index section {sec} failed its checksum")
            }
            IndexFileError::Corrupt(why) => write!(f, "corrupt index file: {why}"),
        }
    }
}

impl std::error::Error for IndexFileError {}

/// Summary of a frozen file, for `sigmo index stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStat {
    /// Format version.
    pub version: u32,
    /// Digest radius the file was built at.
    pub radius: u32,
    /// Digest slots (dense id upper bound).
    pub molecules: u32,
    /// Live molecules (present slots).
    pub live: u32,
    /// Total per-label digest entries.
    pub digest_entries: u64,
    /// Total posting ids across labels and pair buckets.
    pub posting_entries: u64,
    /// Non-empty label posting lists.
    pub label_postings: u32,
    /// Bytes of stored graph blobs.
    pub graph_bytes: u64,
    /// Whole-file size in bytes.
    pub file_bytes: u64,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn schema_bytes(schema: &LabelSchema) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 2 * schema.num_labels());
    put_u32(&mut out, schema.num_labels() as u32);
    for g in schema.groups() {
        out.push(g.shift);
        out.push(g.bits);
    }
    out
}

fn graph_bytes(graph: &LabeledGraph) -> Vec<u8> {
    let charges = graph.charges();
    let mut out =
        Vec::with_capacity(12 + graph.num_nodes() + 9 * graph.num_edges() + 5 * charges.len());
    put_u32(&mut out, graph.num_nodes() as u32);
    out.extend_from_slice(graph.labels());
    put_u32(&mut out, graph.num_edges() as u32);
    for (a, b, l) in graph.edges() {
        put_u32(&mut out, a);
        put_u32(&mut out, b);
        out.push(l);
    }
    // Version 2: sparse formal charges. Version-1 blobs end at the last
    // edge, so the reader treats a missing section as "no charges".
    put_u32(&mut out, charges.len() as u32);
    for &(v, c) in charges {
        put_u32(&mut out, v);
        out.push(c as u8);
    }
    out
}

/// Serializes a [`MoleculeIndex`] plus its id-parallel graphs into the
/// `SIGMOIDX` byte format. `graphs[id]` must be the stored
/// representative for every live id (`None` or missing entries are
/// written as absent slots alongside tombstones — the compaction
/// described in the module docs).
pub fn serialize(index: &MoleculeIndex, graphs: &[Option<&LabeledGraph>]) -> Vec<u8> {
    let num_mols = index.len() as u32;
    let live: Vec<(MolId, &MolDigest)> = index
        .slots()
        .filter(|&(id, _, tombstoned)| {
            !tombstoned && matches!(graphs.get(id as usize), Some(Some(_)))
        })
        .map(|(id, digest, _)| (id, digest))
        .collect();

    // SCHEMA
    let mut sec_schema = schema_bytes(index.schema());
    sec_schema.extend_from_slice(&schema_bytes(&sigmo_core::filter::pair_schema()));

    // DIGESTS + ENTRIES
    let mut sec_digests = Vec::with_capacity(num_mols as usize * DIGEST_ROW_LEN);
    let mut sec_entries = Vec::new();
    let mut entry_cursor: u32 = 0;
    let mut live_iter = live.iter().peekable();
    for id in 0..num_mols {
        match live_iter.peek() {
            Some(&&(live_id, digest)) if live_id == id => {
                live_iter.next();
                put_u32(&mut sec_digests, 1); // flags: present
                put_u32(&mut sec_digests, digest.node_count);
                put_u32(&mut sec_digests, entry_cursor);
                put_u32(&mut sec_digests, digest.labels.len() as u32);
                for w in digest.presence {
                    put_u64(&mut sec_digests, w);
                }
                put_u64(&mut sec_digests, digest.all_sig.0);
                put_u64(&mut sec_digests, digest.all_pair.0);
                for e in &digest.labels {
                    put_u32(&mut sec_entries, e.label as u32);
                    put_u32(&mut sec_entries, 0);
                    put_u64(&mut sec_entries, e.sig.0);
                    put_u64(&mut sec_entries, e.pair.0);
                }
                entry_cursor += digest.labels.len() as u32;
            }
            _ => sec_digests.extend_from_slice(&[0u8; DIGEST_ROW_LEN]),
        }
    }

    // Postings, compacted to live ids.
    let live_set: Vec<bool> = {
        let mut v = vec![false; num_mols as usize];
        for &(id, _) in &live {
            v[id as usize] = true;
        }
        v
    };
    let postings_section = |lists: &mut dyn Iterator<Item = Vec<MolId>>, slots: usize| -> Vec<u8> {
        let lists: Vec<Vec<MolId>> = lists.collect();
        debug_assert_eq!(lists.len(), slots);
        let mut out = Vec::new();
        let mut cursor: u64 = 0;
        for list in &lists {
            put_u64(&mut out, cursor);
            put_u64(&mut out, list.len() as u64);
            cursor += list.len() as u64;
        }
        for list in &lists {
            for &id in list {
                put_u32(&mut out, id);
            }
        }
        out
    };
    let sec_labels = postings_section(
        &mut (0..256u16).map(|l| {
            index
                .label_posting(l as u8)
                .iter()
                .copied()
                .filter(|&id| live_set[id as usize])
                .collect()
        }),
        256,
    );
    let sec_pairs = postings_section(
        &mut (0..16usize).map(|b| {
            index
                .pair_posting(b)
                .iter()
                .copied()
                .filter(|&id| live_set[id as usize])
                .collect()
        }),
        16,
    );

    // GRAPHS
    let mut sec_graphs = vec![0u8; num_mols as usize * DIR_ENTRY_LEN];
    let mut blobs = Vec::new();
    for &(id, _) in &live {
        let graph = graphs[id as usize].expect("live slot has a graph");
        let blob = graph_bytes(graph);
        let row = id as usize * DIR_ENTRY_LEN;
        sec_graphs[row..row + 8].copy_from_slice(&(blobs.len() as u64).to_le_bytes());
        sec_graphs[row + 8..row + 16].copy_from_slice(&(blob.len() as u64).to_le_bytes());
        blobs.extend_from_slice(&blob);
    }
    sec_graphs.extend_from_slice(&blobs);

    // Assemble: header, table, sections.
    let sections: [(u32, &Vec<u8>); SECTION_COUNT] = [
        (SEC_SCHEMA, &sec_schema),
        (SEC_DIGESTS, &sec_digests),
        (SEC_ENTRIES, &sec_entries),
        (SEC_LABELS, &sec_labels),
        (SEC_PAIRS, &sec_pairs),
        (SEC_GRAPHS, &sec_graphs),
    ];
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, index.config().radius as u32);
    put_u32(&mut out, num_mols);
    put_u32(&mut out, index.schema().num_labels() as u32);
    put_u32(&mut out, SECTION_COUNT as u32);
    put_u32(&mut out, 0);
    let mut offset = (HEADER_LEN + SECTION_COUNT * TABLE_ENTRY_LEN) as u64;
    for (id, body) in sections {
        put_u32(&mut out, id);
        put_u32(&mut out, 0);
        put_u64(&mut out, offset);
        put_u64(&mut out, body.len() as u64);
        put_u64(&mut out, fnv1a64(body));
        offset += body.len() as u64;
    }
    for (_, body) in sections {
        out.extend_from_slice(body);
    }
    out
}

/// Bounds-checked little-endian readers over the raw buffer.
fn get_u32(bytes: &[u8], off: usize) -> Result<u32, IndexFileError> {
    bytes
        .get(off..off + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        .ok_or(IndexFileError::Truncated("u32 read"))
}

fn get_u64(bytes: &[u8], off: usize) -> Result<u64, IndexFileError> {
    bytes
        .get(off..off + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .ok_or(IndexFileError::Truncated("u64 read"))
}

/// A validated, zero-copy view over an index file's bytes. Construction
/// ([`FrozenIndex::open`]) verifies magic, version, the section table,
/// every section checksum, and every directory range, so accessors can
/// read in place without re-validating.
#[derive(Debug)]
pub struct FrozenIndex {
    bytes: Vec<u8>,
    version: u32,
    radius: u32,
    num_mols: u32,
    /// `(offset, len)` per section id, index `id - 1`.
    sections: [(usize, usize); SECTION_COUNT],
}

impl FrozenIndex {
    /// Validates `bytes` as a `SIGMOIDX` file and takes ownership.
    pub fn open(bytes: Vec<u8>) -> Result<FrozenIndex, IndexFileError> {
        if bytes.len() < HEADER_LEN {
            return Err(IndexFileError::TooShort);
        }
        if &bytes[0..8] != MAGIC {
            return Err(IndexFileError::BadMagic);
        }
        let version = get_u32(&bytes, 8)?;
        if version == 0 || version > VERSION {
            return Err(IndexFileError::BadVersion(version));
        }
        let radius = get_u32(&bytes, 12)?;
        let num_mols = get_u32(&bytes, 16)?;
        let section_count = get_u32(&bytes, 24)? as usize;
        if section_count != SECTION_COUNT {
            return Err(IndexFileError::Corrupt("wrong section count"));
        }
        let mut sections = [(0usize, 0usize); SECTION_COUNT];
        let mut seen = [false; SECTION_COUNT];
        for i in 0..SECTION_COUNT {
            let row = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let id = get_u32(&bytes, row)?;
            if !(1..=SECTION_COUNT as u32).contains(&id) {
                return Err(IndexFileError::Corrupt("unknown section id"));
            }
            let slot = (id - 1) as usize;
            if seen[slot] {
                return Err(IndexFileError::Corrupt("duplicate section id"));
            }
            seen[slot] = true;
            let off = get_u64(&bytes, row + 8)? as usize;
            let len = get_u64(&bytes, row + 16)? as usize;
            let checksum = get_u64(&bytes, row + 24)?;
            let body = bytes
                .get(
                    off..off
                        .checked_add(len)
                        .ok_or(IndexFileError::Truncated("section range"))?,
                )
                .ok_or(IndexFileError::Truncated("section body"))?;
            if fnv1a64(body) != checksum {
                return Err(IndexFileError::ChecksumMismatch(id));
            }
            sections[slot] = (off, len);
        }
        let frozen = FrozenIndex {
            bytes,
            version,
            radius,
            num_mols,
            sections,
        };
        frozen.validate_shapes()?;
        Ok(frozen)
    }

    /// Structural validation beyond checksums: fixed-width sections have
    /// the width the header implies, and every directory row stays in
    /// range — after this, accessors cannot read out of bounds.
    fn validate_shapes(&self) -> Result<(), IndexFileError> {
        let n = self.num_mols as usize;
        let (_, dlen) = self.section(SEC_DIGESTS);
        if dlen != n * DIGEST_ROW_LEN {
            return Err(IndexFileError::Corrupt("digest directory size"));
        }
        let (_, elen) = self.section(SEC_ENTRIES);
        if !elen.is_multiple_of(ENTRY_LEN) {
            return Err(IndexFileError::Corrupt("entry section size"));
        }
        let entries = elen / ENTRY_LEN;
        for id in 0..self.num_mols {
            if let Some((entry_off, entry_count, _)) = self.digest_row(id)? {
                let end = entry_off
                    .checked_add(entry_count)
                    .ok_or(IndexFileError::Truncated("digest entries"))?;
                if end as usize > entries {
                    return Err(IndexFileError::Truncated("digest entries"));
                }
            }
        }
        self.validate_postings(SEC_LABELS, 256)?;
        self.validate_postings(SEC_PAIRS, 16)?;
        let (goff, glen) = self.section(SEC_GRAPHS);
        if glen < n * DIR_ENTRY_LEN {
            return Err(IndexFileError::Truncated("graph directory"));
        }
        let blob_base = n * DIR_ENTRY_LEN;
        for id in 0..n {
            let row = goff + id * DIR_ENTRY_LEN;
            let off = get_u64(&self.bytes, row)? as usize;
            let len = get_u64(&self.bytes, row + 8)? as usize;
            let end = blob_base
                .checked_add(off)
                .and_then(|s| s.checked_add(len))
                .ok_or(IndexFileError::Truncated("graph blob"))?;
            if end > glen {
                return Err(IndexFileError::Truncated("graph blob"));
            }
        }
        Ok(())
    }

    fn validate_postings(&self, sec: u32, slots: usize) -> Result<(), IndexFileError> {
        let (off, len) = self.section(sec);
        if len < slots * DIR_ENTRY_LEN || !(len - slots * DIR_ENTRY_LEN).is_multiple_of(4) {
            return Err(IndexFileError::Corrupt("posting section size"));
        }
        let ids = (len - slots * DIR_ENTRY_LEN) / 4;
        for s in 0..slots {
            let row = off + s * DIR_ENTRY_LEN;
            let start = get_u64(&self.bytes, row)? as usize;
            let count = get_u64(&self.bytes, row + 8)? as usize;
            let end = start
                .checked_add(count)
                .ok_or(IndexFileError::Truncated("posting list"))?;
            if end > ids {
                return Err(IndexFileError::Truncated("posting list"));
            }
        }
        Ok(())
    }

    fn section(&self, id: u32) -> (usize, usize) {
        self.sections[(id - 1) as usize]
    }

    /// Digest directory row: `Some((entry_off, entry_count, row_offset))`
    /// when the slot is present.
    fn digest_row(&self, id: MolId) -> Result<Option<(u32, u32, usize)>, IndexFileError> {
        let (off, _) = self.section(SEC_DIGESTS);
        let row = off + id as usize * DIGEST_ROW_LEN;
        let flags = get_u32(&self.bytes, row)?;
        Ok((flags & 1 != 0).then_some((
            get_u32(&self.bytes, row + 8)?,
            get_u32(&self.bytes, row + 12)?,
            row,
        )))
    }

    /// Digest radius the file was built at.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Digest slots (dense id upper bound, absent slots included).
    pub fn num_mols(&self) -> u32 {
        self.num_mols
    }

    /// The node-label schema the digests were computed under.
    pub fn schema(&self) -> Result<LabelSchema, IndexFileError> {
        let (off, len) = self.section(SEC_SCHEMA);
        let n = get_u32(&self.bytes, off)? as usize;
        if len < 4 + 2 * n {
            return Err(IndexFileError::Truncated("schema section"));
        }
        let groups: Vec<BitGroup> = (0..n)
            .map(|i| BitGroup {
                shift: self.bytes[off + 4 + 2 * i],
                bits: self.bytes[off + 5 + 2 * i],
            })
            .collect();
        LabelSchema::from_groups(groups).ok_or(IndexFileError::Corrupt("schema groups overflow"))
    }

    /// Reads one slot's digest (present slots only).
    pub fn digest(&self, id: MolId) -> Result<Option<MolDigest>, IndexFileError> {
        if id >= self.num_mols {
            return Ok(None);
        }
        let Some((entry_off, entry_count, row)) = self.digest_row(id)? else {
            return Ok(None);
        };
        let (eoff, _) = self.section(SEC_ENTRIES);
        let mut labels = Vec::with_capacity(entry_count as usize);
        for e in 0..entry_count as usize {
            let at = eoff + (entry_off as usize + e) * ENTRY_LEN;
            labels.push(LabelEntry {
                label: get_u32(&self.bytes, at)? as u8,
                sig: Signature(get_u64(&self.bytes, at + 8)?),
                pair: Signature(get_u64(&self.bytes, at + 16)?),
            });
        }
        let mut presence = [0u64; 4];
        for (w, slot) in presence.iter_mut().enumerate() {
            *slot = get_u64(&self.bytes, row + 16 + 8 * w)?;
        }
        Ok(Some(MolDigest {
            presence,
            node_count: get_u32(&self.bytes, row + 4)?,
            labels,
            all_sig: Signature(get_u64(&self.bytes, row + 48)?),
            all_pair: Signature(get_u64(&self.bytes, row + 56)?),
        }))
    }

    /// Reads one slot's stored graph (present slots only).
    pub fn graph(&self, id: MolId) -> Result<Option<LabeledGraph>, IndexFileError> {
        if id >= self.num_mols || self.digest_row(id)?.is_none() {
            return Ok(None);
        }
        let (goff, _) = self.section(SEC_GRAPHS);
        let row = goff + id as usize * DIR_ENTRY_LEN;
        let off = get_u64(&self.bytes, row)? as usize;
        let len = get_u64(&self.bytes, row + 8)? as usize;
        let base = goff + self.num_mols as usize * DIR_ENTRY_LEN + off;
        let blob = &self.bytes[base..base + len];
        let nodes = get_u32(blob, 0)? as usize;
        if blob.len() < 4 + nodes + 4 {
            return Err(IndexFileError::Truncated("graph blob header"));
        }
        let mut graph = LabeledGraph::new();
        for &l in &blob[4..4 + nodes] {
            graph.add_node(l);
        }
        let edges = get_u32(blob, 4 + nodes)? as usize;
        let mut at = 8 + nodes;
        if blob.len() < at + edges * 9 {
            return Err(IndexFileError::Truncated("graph edges"));
        }
        for _ in 0..edges {
            let a = get_u32(blob, at)?;
            let b = get_u32(blob, at + 4)?;
            let l = blob[at + 8];
            graph
                .add_edge(a, b, l)
                .map_err(|_| IndexFileError::Corrupt("invalid stored edge"))?;
            at += 9;
        }
        // Version-2 charge section; version-1 blobs end at the last edge.
        if at + 4 <= blob.len() {
            let count = get_u32(blob, at)? as usize;
            at += 4;
            if blob.len() < at + count * 5 {
                return Err(IndexFileError::Truncated("graph charges"));
            }
            for _ in 0..count {
                let v = get_u32(blob, at)?;
                if v as usize >= nodes {
                    return Err(IndexFileError::Corrupt("charge on out-of-range node"));
                }
                graph.set_charge(v, blob[at + 4] as i8);
                at += 5;
            }
        }
        Ok(Some(graph))
    }

    /// Aggregate counters straight off the directories (no thaw).
    pub fn stat(&self) -> Result<IndexStat, IndexFileError> {
        let mut live = 0u32;
        let mut digest_entries = 0u64;
        for id in 0..self.num_mols {
            if let Some((_, count, _)) = self.digest_row(id)? {
                live += 1;
                digest_entries += count as u64;
            }
        }
        let posting_count = |sec: u32, slots: usize| -> (u64, u32) {
            let (off, _) = self.section(sec);
            let mut total = 0u64;
            let mut nonempty = 0u32;
            for s in 0..slots {
                let count = get_u64(&self.bytes, off + s * DIR_ENTRY_LEN + 8).unwrap_or(0);
                total += count;
                nonempty += (count > 0) as u32;
            }
            (total, nonempty)
        };
        let (label_ids, label_nonempty) = posting_count(SEC_LABELS, 256);
        let (pair_ids, _) = posting_count(SEC_PAIRS, 16);
        let (_, glen) = self.section(SEC_GRAPHS);
        Ok(IndexStat {
            version: self.version,
            radius: self.radius,
            molecules: self.num_mols,
            live,
            digest_entries,
            posting_entries: label_ids + pair_ids,
            label_postings: label_nonempty,
            graph_bytes: (glen - self.num_mols as usize * DIR_ENTRY_LEN) as u64,
            file_bytes: self.bytes.len() as u64,
        })
    }

    /// Rehydrates the mutable index (digests verbatim — postings are
    /// re-derived from them by the same rule that wrote the file) plus
    /// the id-parallel stored graphs.
    pub fn thaw(&self) -> Result<(MoleculeIndex, Vec<Option<LabeledGraph>>), IndexFileError> {
        let schema = self.schema()?;
        let mut index = MoleculeIndex::new(
            IndexConfig {
                radius: self.radius as usize,
            },
            &schema,
        );
        let mut graphs = Vec::with_capacity(self.num_mols as usize);
        for id in 0..self.num_mols {
            match self.digest(id)? {
                Some(digest) => {
                    index.add_digest(id, digest, false);
                    graphs.push(self.graph(id)?);
                }
                None => {
                    graphs.push(None);
                }
            }
        }
        // Absent trailing slots must still count toward len() so fresh
        // ids mint above them after a reload.
        index.reserve_len(self.num_mols as usize);
        Ok((index, graphs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(labels: &[u8]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (1..labels.len() as u32).map(|i| (i - 1, i)).collect();
        LabeledGraph::from_edges(labels, &edges).unwrap()
    }

    fn sample() -> (MoleculeIndex, Vec<LabeledGraph>) {
        let mols = vec![chain(&[1, 2, 1]), chain(&[3, 3]), chain(&[1, 1, 1, 2])];
        let mut ix = MoleculeIndex::new(IndexConfig::default(), &LabelSchema::organic());
        for (i, m) in mols.iter().enumerate() {
            ix.add(i as MolId, m);
        }
        (ix, mols)
    }

    fn bytes_of(ix: &MoleculeIndex, mols: &[LabeledGraph]) -> Vec<u8> {
        let refs: Vec<Option<&LabeledGraph>> = mols.iter().map(Some).collect();
        serialize(ix, &refs)
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let (ix, mols) = sample();
        let bytes = bytes_of(&ix, &mols);
        let frozen = FrozenIndex::open(bytes.clone()).unwrap();
        let (thawed, graphs) = frozen.thaw().unwrap();
        let refs: Vec<Option<&LabeledGraph>> = graphs.iter().map(|g| g.as_ref()).collect();
        assert_eq!(
            serialize(&thawed, &refs),
            bytes,
            "serialize ∘ thaw ∘ open is the identity on bytes"
        );
    }

    #[test]
    fn tombstones_compact_away_but_preserve_ids() {
        let (mut ix, mols) = sample();
        ix.remove(1);
        let bytes = bytes_of(&ix, &mols);
        let frozen = FrozenIndex::open(bytes).unwrap();
        assert_eq!(frozen.num_mols(), 3, "slot count keeps the id space");
        assert!(frozen.digest(1).unwrap().is_none(), "tombstone is absent");
        assert!(frozen.digest(2).unwrap().is_some(), "later ids keep theirs");
        let stat = frozen.stat().unwrap();
        assert_eq!((stat.molecules, stat.live), (3, 2));
        let (thawed, graphs) = frozen.thaw().unwrap();
        assert_eq!(thawed.len(), 3);
        assert!(graphs[1].is_none());
        assert_eq!(graphs[2].as_ref().unwrap().num_nodes(), 4);
    }

    #[test]
    fn stored_graphs_round_trip_exactly() {
        let (ix, mols) = sample();
        let frozen = FrozenIndex::open(bytes_of(&ix, &mols)).unwrap();
        for (i, m) in mols.iter().enumerate() {
            let back = frozen.graph(i as MolId).unwrap().unwrap();
            assert_eq!(back.labels(), m.labels());
            let e1: Vec<_> = back.edges().collect();
            let e2: Vec<_> = m.edges().collect();
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn corrupt_files_are_rejected_cleanly() {
        let (ix, mols) = sample();
        let bytes = bytes_of(&ix, &mols);

        assert_eq!(
            FrozenIndex::open(Vec::new()).unwrap_err(),
            IndexFileError::TooShort
        );

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            FrozenIndex::open(bad).unwrap_err(),
            IndexFileError::BadMagic
        );

        let mut bad = bytes.clone();
        bad[8] = 9; // version
        assert_eq!(
            FrozenIndex::open(bad).unwrap_err(),
            IndexFileError::BadVersion(9)
        );

        let truncated = bytes[..bytes.len() / 2].to_vec();
        assert!(matches!(
            FrozenIndex::open(truncated).unwrap_err(),
            IndexFileError::Truncated(_)
        ));

        // Flip one payload byte: some section's checksum must fail.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            FrozenIndex::open(bad).unwrap_err(),
            IndexFileError::ChecksumMismatch(_)
        ));
    }
}
