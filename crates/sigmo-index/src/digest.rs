//! Per-molecule signature digests.
//!
//! A [`MolDigest`] compresses one molecule into the fixed-size facts the
//! screen needs: which raw labels it contains, and — per contained label
//! plus once over all nodes — the per-group **maximum** of its node
//! signatures at the index radius and of its label-pair signatures. The
//! maxima are taken with [`Signature::max_groups`], the join of the
//! domination order, so "the digest fails to dominate a query
//! signature" proves that *no individual node* dominates it: some
//! schema group's query count exceeds the max over every node.
//!
//! Digests are computed by the exact filter's own machinery —
//! [`SignatureSet`] over a single-molecule batch for neighborhood
//! signatures (which skips wildcard-labeled neighbors, exactly as the
//! refinement kernel's inputs do) and
//! [`sigmo_core::filter::pair_signature`] for the label-pair side — so
//! digest semantics can never drift from engine semantics.

use sigmo_core::filter::pair_signature;
use sigmo_core::{LabelSchema, Signature, SignatureSet};
use sigmo_graph::{CsrGo, Label, LabeledGraph};

/// One present raw label's summary: the per-group max, over the
/// molecule's nodes carrying exactly that label, of the radius-`k`
/// signature and the label-pair signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelEntry {
    /// The raw node label (element id, or the wildcard byte).
    pub label: Label,
    /// Per-group max of radius-`k` node signatures under this label.
    pub sig: Signature,
    /// Per-group max of label-pair signatures under this label.
    pub pair: Signature,
}

/// A molecule's screen summary. See the module docs for the max-join
/// semantics that make "digest fails to dominate ⟹ every node fails to
/// dominate" hold per schema group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MolDigest {
    /// Bit `l` set ⟺ the molecule has ≥ 1 node with raw label `l`.
    pub presence: [u64; 4],
    /// Node count (diagnostics only; never used to reject).
    pub node_count: u32,
    /// One entry per present label, sorted by label.
    pub labels: Vec<LabelEntry>,
    /// Per-group max of radius-`k` signatures over *all* nodes — the
    /// digest consulted for wildcard-labeled query nodes, whose
    /// candidate rows span every data node.
    pub all_sig: Signature,
    /// Per-group max of label-pair signatures over all nodes.
    pub all_pair: Signature,
}

impl MolDigest {
    /// Summarizes one molecule at the given digest radius. `schema` must
    /// be the same label schema the serving plans are built with — the
    /// screen compares digests and query signatures group-for-group.
    pub fn compute(
        graph: &LabeledGraph,
        schema: &LabelSchema,
        pair_schema: &LabelSchema,
        radius: usize,
    ) -> MolDigest {
        let csr = CsrGo::from_graphs(std::slice::from_ref(graph));
        let mut sigs = SignatureSet::new(&csr, schema.clone());
        for _ in 0..radius {
            sigs.advance(&csr);
        }
        let mut digest = MolDigest {
            presence: [0u64; 4],
            node_count: csr.num_nodes() as u32,
            labels: Vec::new(),
            all_sig: Signature::EMPTY,
            all_pair: Signature::EMPTY,
        };
        for v in 0..csr.num_nodes() as u32 {
            let label = csr.label(v);
            let sig = sigs.signature(v);
            let pair = pair_signature(&csr, pair_schema, v);
            digest.presence[(label >> 6) as usize] |= 1u64 << (label & 63);
            digest.all_sig = digest.all_sig.max_groups(schema, &sig);
            digest.all_pair = digest.all_pair.max_groups(pair_schema, &pair);
            match digest.labels.binary_search_by_key(&label, |e| e.label) {
                Ok(i) => {
                    let e = &mut digest.labels[i];
                    e.sig = e.sig.max_groups(schema, &sig);
                    e.pair = e.pair.max_groups(pair_schema, &pair);
                }
                Err(i) => digest.labels.insert(i, LabelEntry { label, sig, pair }),
            }
        }
        digest
    }

    /// Whether the molecule contains ≥ 1 node with raw label `label`.
    #[inline]
    pub fn has_label(&self, label: Label) -> bool {
        self.presence[(label >> 6) as usize] & (1u64 << (label & 63)) != 0
    }

    /// The summary entry for `label`, when present.
    #[inline]
    pub fn entry(&self, label: Label) -> Option<&LabelEntry> {
        self.labels
            .binary_search_by_key(&label, |e| e.label)
            .ok()
            .map(|i| &self.labels[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmo_core::filter::pair_schema;

    fn chain(labels: &[u8]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (1..labels.len() as u32).map(|i| (i - 1, i)).collect();
        LabeledGraph::from_edges(labels, &edges).unwrap()
    }

    #[test]
    fn digest_presence_and_entries() {
        let schema = LabelSchema::organic();
        let pairs = pair_schema();
        let g = chain(&[1, 3, 1, 2]);
        let d = MolDigest::compute(&g, &schema, &pairs, 2);
        assert_eq!(d.node_count, 4);
        assert!(d.has_label(1) && d.has_label(2) && d.has_label(3));
        assert!(!d.has_label(0) && !d.has_label(9));
        assert_eq!(d.labels.len(), 3);
        assert!(d.entry(1).is_some() && d.entry(7).is_none());
        // Labels are sorted.
        let labels: Vec<u8> = d.labels.iter().map(|e| e.label).collect();
        assert_eq!(labels, vec![1, 2, 3]);
    }

    #[test]
    fn digest_dominates_every_node_signature() {
        let schema = LabelSchema::organic();
        let pairs = pair_schema();
        let g = chain(&[1, 2, 1, 3, 1, 1, 2]);
        let radius = 3;
        let d = MolDigest::compute(&g, &schema, &pairs, radius);
        let csr = CsrGo::from_graphs(std::slice::from_ref(&g));
        let mut sigs = SignatureSet::new(&csr, schema.clone());
        for _ in 0..radius {
            sigs.advance(&csr);
        }
        for v in 0..csr.num_nodes() as u32 {
            let label = csr.label(v);
            let e = d.entry(label).expect("present label has an entry");
            assert!(e.sig.dominates(&schema, &sigs.signature(v)));
            assert!(d.all_sig.dominates(&schema, &sigs.signature(v)));
            let p = pair_signature(&csr, &pairs, v);
            assert!(e.pair.dominates(&pairs, &p));
            assert!(d.all_pair.dominates(&pairs, &p));
        }
    }
}
