//! Corpus-scale persistent signature index.
//!
//! A serving deployment holds a *standing corpus* of molecules and
//! answers a stream of substructure queries against it. Without an
//! index, screening cost grows with the corpus: every request pays the
//! bitmap filter over every molecule it touches. This crate moves that
//! cost to ingest time. Each molecule is summarized **once** — into the
//! label set it contains, inverted label / label-pair posting lists,
//! and a per-molecule *signature digest* (the per-group maximum of its
//! node signatures at radius `k`, computed by the very same
//! [`sigmo_core::SignatureSet`] / label-pair machinery the engine's
//! filter uses) — so a query can reject whole molecules with a handful
//! of `u64` compares before any [`sigmo_core::QueryPlan`] bitmap is
//! allocated. Screening cost then scales with the *surviving* set, not
//! the corpus.
//!
//! # Soundness (no false rejects), and bit-identity
//!
//! Screening is only usable in front of an exact engine if it never
//! rejects a molecule the engine would match. The checks here are
//! strictly stronger: every rejection implies some query node's
//! candidate row over that molecule is **empty** at a point the exact
//! filter itself enforces, so the molecule could not have reached the
//! join at all. Concretely, [`MoleculeIndex::screen`] rejects a
//! molecule for a query graph only when some query node
//!
//! 1. has a concrete label the molecule does not contain (its candidate
//!    row is empty at label-bucketed init),
//! 2. has a label-pair signature the molecule's pair digest fails to
//!    dominate (the row is wiped by the unconditional init-time
//!    label-pair pre-check), or
//! 3. has a radius-`r` signature (`r = min(k, last_dirty_radius)`) the
//!    molecule's radius-`k` signature digest fails to dominate (the row
//!    is wiped by refinement at radius `r`; data signatures only grow
//!    with radius, so the radius-`k` digest dominates everything the
//!    radius-`r` data signatures dominate).
//!
//! A molecule is pruned only when **every** query graph rejects it —
//! exactly the condition under which the exact run has no GMCR pair for
//! the molecule, produces zero matches, performs zero join steps, and
//! reports `Complete`. The serving layer can therefore synthesize that
//! empty outcome for pruned molecules and stay bit-identical to the
//! index-off path, step budgets included. DESIGN.md §13 carries the
//! full argument.
//!
//! # Layout
//!
//! * [`digest`] — per-molecule summaries ([`MolDigest`]).
//! * [`query`] — the query side ([`ScreenQuery`], built from a plan).
//! * [`index`] — the in-memory index ([`MoleculeIndex`]): postings,
//!   incremental add / tombstoning remove, per-molecule and
//!   corpus-level screening.
//! * [`disk`] — the persistent form: a little-endian, fixed-width,
//!   checksummed section file ([`FrozenIndex`]) validated without
//!   copying, loadable back into a [`MoleculeIndex`].

pub mod digest;
pub mod disk;
pub mod index;
pub mod query;

pub use digest::MolDigest;
pub use disk::{serialize, FrozenIndex, IndexFileError, IndexStat};
pub use index::{IndexStats, MoleculeIndex};
pub use query::ScreenQuery;

/// Index build parameters. The radius must cover the deepest signature
/// the screen will be asked to check; [`ScreenQuery`] clamps itself to
/// `min(radius, plan.last_dirty_radius())`, so any value is *sound* —
/// larger radii just screen more sharply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Signature digest radius `k`: per-molecule digests summarize each
    /// node's radius-`k` neighborhood. The default matches the engine's
    /// default refinement depth (`refinement_iterations − 1`).
    pub radius: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self { radius: 4 }
    }
}
