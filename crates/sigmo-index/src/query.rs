//! The query side of screening: per-query-node requirements extracted
//! from a built [`QueryPlan`].
//!
//! A [`ScreenQuery`] is the plan's screening shadow — for every query
//! node, the three facts a molecule digest can be tested against:
//!
//! * its concrete label (if not a wildcard),
//! * its label-pair signature (the init-time pre-check input, taken
//!   verbatim from [`QueryPlan::pair_rows`]),
//! * its refined neighborhood signature at the *screen radius*
//!   `min(index radius, plan.last_dirty_radius())` — query signatures
//!   converge past `last_dirty_radius`, and data signatures only grow
//!   with radius, so a radius-`k` digest failing to dominate the
//!   radius-`r` query signature (`r ≤ k`) proves the exact filter wipes
//!   the node's candidate row by radius `r`.
//!
//! Nodes with no usable requirement (wildcard label, empty pair and
//! neighborhood signatures) are dropped: they can never reject. A query
//! graph with no requirements left accepts every molecule, which keeps
//! screening trivially sound for degenerate queries.

use sigmo_core::{LabelSchema, QueryPlan, Signature};
use sigmo_graph::{Label, WILDCARD_LABEL};

/// One query node's screening requirements. `None` label = wildcard
/// (tested against the molecule-wide digests instead of a per-label
/// entry, because its candidate row spans every data node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeReq {
    /// Concrete label, or `None` for a wildcard query node.
    pub label: Option<Label>,
    /// Label-pair signature (possibly `EMPTY`).
    pub pair: Signature,
    /// Neighborhood signature at the screen radius (possibly `EMPTY`).
    pub sig: Signature,
    /// Conservative weakening of a SMARTS atom-list / negation predicate:
    /// the node can only map to a data node whose label bit is set here,
    /// so the molecule must *contain* at least one such label
    /// (presence-any digest check). The predicate's other fields (degree,
    /// ring, H-count, charge) are per-node facts a molecule-level digest
    /// cannot soundly test, so they are dropped — screening stays a pure
    /// over-approximation of the exact filter.
    pub any_labels: Option<u64>,
}

/// One query graph's requirements plus its posting-list needs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphReq {
    /// Requirements that can reject (see module docs).
    pub nodes: Vec<NodeReq>,
    /// Sorted distinct concrete labels across `nodes` — each is a
    /// label-posting requirement for corpus screening.
    pub labels: Vec<Label>,
    /// Bitmask over the 16 pair buckets: bucket `b` set ⟺ some node
    /// requires ≥ 1 pair in bucket `b` — each set bit is a pair-posting
    /// requirement for corpus screening.
    pub buckets: u16,
}

/// A plan's screening shadow. Built once per plan (the serving layer
/// caches it next to the plan) and consulted per molecule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenQuery {
    /// Node-label schema (must equal the index's — asserted on screen).
    pub schema: LabelSchema,
    /// Label-pair bucket schema.
    pub pair_schema: LabelSchema,
    /// The clamped signature radius actually screened at; 0 disables
    /// the neighborhood-signature check (label and pair checks remain).
    pub sig_radius: usize,
    /// One entry per query graph, in plan order.
    pub graphs: Vec<GraphReq>,
}

impl ScreenQuery {
    /// Extracts the screening shadow of `plan`. `index_radius` is the
    /// digest radius of the index this query will screen against; the
    /// signature check self-clamps to `min(index_radius,
    /// plan.last_dirty_radius(), plan.max_radius())`.
    pub fn from_plan(plan: &QueryPlan, index_radius: usize) -> ScreenQuery {
        let batch = plan.batch();
        let sig_radius = index_radius
            .min(plan.last_dirty_radius())
            .min(plan.max_radius());
        let sigs = (sig_radius >= 1).then(|| plan.signatures_at(sig_radius));
        // pair_rows and pred_rows are ascending by flat node id — walk
        // them in lockstep.
        let mut pair_rows = plan.pair_rows().iter().peekable();
        let mut pred_rows = plan.pred_rows().iter().peekable();
        let mut graphs = Vec::with_capacity(batch.num_graphs());
        for g in 0..batch.num_graphs() {
            let mut req = GraphReq::default();
            for v in batch.node_range(g) {
                let label = batch.label(v);
                let pair = match pair_rows.peek() {
                    Some(&&(row, sig)) if row == v => {
                        pair_rows.next();
                        sig
                    }
                    _ => Signature::EMPTY,
                };
                let any_labels = match pred_rows.peek() {
                    Some(&&(row, ref pred)) if row == v => {
                        pred_rows.next();
                        pred.label_any
                    }
                    _ => None,
                };
                let sig = sigs.map_or(Signature::EMPTY, |s| s[v as usize]);
                let label = (label != WILDCARD_LABEL).then_some(label);
                if label.is_none()
                    && pair == Signature::EMPTY
                    && sig == Signature::EMPTY
                    && any_labels.is_none()
                {
                    continue; // can never reject
                }
                req.nodes.push(NodeReq {
                    label,
                    pair,
                    sig,
                    any_labels,
                });
                if let Some(l) = label {
                    if let Err(i) = req.labels.binary_search(&l) {
                        req.labels.insert(i, l);
                    }
                }
                for (b, group) in plan.pair_schema().groups().iter().enumerate() {
                    if pair.0 & group.mask() != 0 {
                        req.buckets |= 1 << b;
                    }
                }
            }
            graphs.push(req);
        }
        ScreenQuery {
            schema: plan.schema().clone(),
            pair_schema: plan.pair_schema().clone(),
            sig_radius,
            graphs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmo_core::engine::EngineConfig;
    use sigmo_graph::LabeledGraph;

    fn chain(labels: &[u8]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (1..labels.len() as u32).map(|i| (i - 1, i)).collect();
        LabeledGraph::from_edges(labels, &edges).unwrap()
    }

    #[test]
    fn from_plan_extracts_labels_and_clamps_radius() {
        let cfg = EngineConfig::default();
        let plan = QueryPlan::build(&[chain(&[1, 2, 1]), chain(&[3, 3])], &cfg);
        let q = ScreenQuery::from_plan(&plan, 64);
        assert_eq!(q.graphs.len(), 2);
        assert_eq!(q.graphs[0].labels, vec![1, 2]);
        assert_eq!(q.graphs[1].labels, vec![3]);
        assert!(
            q.sig_radius <= plan.last_dirty_radius(),
            "radius clamps to the plan's convergence point"
        );
        assert!(q.graphs[0].nodes.iter().all(|n| n.label.is_some()));
        // Every node of a concrete chain has a non-empty pair signature,
        // so each graph needs at least one pair bucket.
        assert_ne!(q.graphs[0].buckets, 0);
    }

    #[test]
    fn wildcard_only_nodes_are_dropped() {
        let cfg = EngineConfig::default();
        // A single wildcard node with no edges has no usable requirement.
        let lone = LabeledGraph::from_edges(&[sigmo_graph::WILDCARD_LABEL], &[]).unwrap();
        let plan = QueryPlan::build(&[lone], &cfg);
        let q = ScreenQuery::from_plan(&plan, 4);
        assert!(
            q.graphs[0].nodes.is_empty(),
            "nothing to reject with — the graph accepts every molecule"
        );
    }
}
