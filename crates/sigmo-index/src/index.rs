//! The in-memory molecule index: digests, inverted postings, and the
//! screening entry points.
//!
//! Postings are sorted `Vec<MolId>` per raw label (256 slots) and per
//! label-pair bucket (16 slots). A molecule appears in label posting
//! `l` iff it contains ≥ 1 node labeled `l`, and in pair posting `b`
//! iff some node has ≥ 1 label-pair in bucket `b` — both facts are
//! derived from the molecule's [`MolDigest`] at [`MoleculeIndex::add`]
//! time, so posting membership can never disagree with the digest the
//! second screening stage consults.
//!
//! Removal tombstones: the digest slot is flagged dead, postings are
//! left in place (they are compacted on [`crate::serialize`]), and
//! every corpus-level screen filters tombstones out. The *per-molecule*
//! screen instead lets a tombstoned id **survive**: retired ids held by
//! in-flight requests must keep executing exactly as they would with
//! the index off, and "survive" is always the bit-identical-safe
//! answer.

use crate::digest::MolDigest;
use crate::query::{GraphReq, ScreenQuery};
use crate::IndexConfig;
use sigmo_core::filter::pair_schema;
use sigmo_core::{LabelSchema, Signature};
use sigmo_graph::LabeledGraph;

/// Dense molecule id — the same dense `u32` the serving layer's
/// `MolStore` mints (this crate cannot depend on `sigmo-serve`, which
/// depends on it).
pub type MolId = u32;

/// Aggregate index shape, for `sigmo index stat` and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Digest slots (including tombstoned).
    pub molecules: usize,
    /// Live (non-tombstoned) molecules.
    pub live: usize,
    /// Tombstoned molecules.
    pub tombstoned: usize,
    /// Non-empty label posting lists.
    pub label_postings: usize,
    /// Total posting entries across labels and pair buckets.
    pub posting_entries: usize,
    /// Total per-label digest entries.
    pub digest_entries: usize,
}

/// One slot of the index: a digest plus liveness.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    digest: MolDigest,
    tombstoned: bool,
}

/// The persistent signature index over a standing molecule corpus. See
/// the crate docs for the soundness contract.
#[derive(Debug, Clone)]
pub struct MoleculeIndex {
    config: IndexConfig,
    schema: LabelSchema,
    pair: LabelSchema,
    /// Digest per id; `None` for ids never added (sparse files only).
    slots: Vec<Option<Slot>>,
    /// label → sorted ids of molecules containing that label.
    label_postings: Vec<Vec<MolId>>,
    /// pair bucket → sorted ids of molecules with ≥ 1 pair in it.
    pair_postings: Vec<Vec<MolId>>,
}

fn push_sorted(list: &mut Vec<MolId>, id: MolId) {
    match list.last() {
        Some(&last) if last >= id => {
            if let Err(i) = list.binary_search(&id) {
                list.insert(i, id);
            }
        }
        _ => list.push(id),
    }
}

impl MoleculeIndex {
    /// Creates an empty index for molecules labeled under `schema`.
    pub fn new(config: IndexConfig, schema: &LabelSchema) -> Self {
        Self {
            config,
            schema: schema.clone(),
            pair: pair_schema(),
            slots: Vec::new(),
            label_postings: vec![Vec::new(); 256],
            pair_postings: vec![Vec::new(); pair_schema().num_labels()],
        }
    }

    /// The build parameters.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// The node-label schema digests were computed under.
    pub fn schema(&self) -> &LabelSchema {
        &self.schema
    }

    /// Number of digest slots (dense upper bound on ids, including
    /// tombstones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no molecule was ever added.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The digest stored for `id`, live or tombstoned.
    pub fn digest(&self, id: MolId) -> Option<&MolDigest> {
        self.slots
            .get(id as usize)
            .and_then(|s| s.as_ref())
            .map(|s| &s.digest)
    }

    /// Whether `id` is tombstoned.
    pub fn is_tombstoned(&self, id: MolId) -> bool {
        self.slots
            .get(id as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|s| s.tombstoned)
    }

    /// Ingests (or re-ingests) a molecule: computes its digest through
    /// the exact filter's own signature machinery and registers its
    /// postings. Re-adding an id clears its tombstone.
    pub fn add(&mut self, id: MolId, graph: &LabeledGraph) {
        let digest = MolDigest::compute(graph, &self.schema, &self.pair, self.config.radius);
        if self.slots.len() <= id as usize {
            self.slots.resize(id as usize + 1, None);
        }
        for entry in &digest.labels {
            push_sorted(&mut self.label_postings[entry.label as usize], id);
        }
        for (b, group) in self.pair.groups().iter().enumerate() {
            if digest.all_pair.0 & group.mask() != 0 {
                push_sorted(&mut self.pair_postings[b], id);
            }
        }
        self.slots[id as usize] = Some(Slot {
            digest,
            tombstoned: false,
        });
    }

    /// Installs a precomputed digest (the disk loader's path — no
    /// signature recompute). Posting registration is identical to
    /// [`MoleculeIndex::add`].
    pub(crate) fn add_digest(&mut self, id: MolId, digest: MolDigest, tombstoned: bool) {
        if self.slots.len() <= id as usize {
            self.slots.resize(id as usize + 1, None);
        }
        for entry in &digest.labels {
            push_sorted(&mut self.label_postings[entry.label as usize], id);
        }
        for (b, group) in self.pair.groups().iter().enumerate() {
            if digest.all_pair.0 & group.mask() != 0 {
                push_sorted(&mut self.pair_postings[b], id);
            }
        }
        self.slots[id as usize] = Some(Slot { digest, tombstoned });
    }

    /// Grows the slot table to at least `len` absent slots — the disk
    /// loader's way of preserving a file's id space past its last live
    /// molecule, so fresh ids mint above retired ones after a reload.
    pub(crate) fn reserve_len(&mut self, len: usize) {
        if self.slots.len() < len {
            self.slots.resize(len, None);
        }
    }

    /// Tombstones a molecule: it stops appearing in every corpus-level
    /// screen ([`MoleculeIndex::screen_corpus`]) immediately. Postings
    /// keep the id until the next [`crate::serialize`] compacts them.
    /// Returns whether the id was live.
    pub fn remove(&mut self, id: MolId) -> bool {
        match self.slots.get_mut(id as usize).and_then(|s| s.as_mut()) {
            Some(slot) if !slot.tombstoned => {
                slot.tombstoned = true;
                true
            }
            _ => false,
        }
    }

    /// Per-molecule screen: does `id` survive `query`? `true` means
    /// "cannot be ruled out — execute it"; `false` is a *proof* that
    /// the exact filter empties some candidate row of every query graph
    /// over this molecule (no GMCR pair, zero matches, zero join steps,
    /// `Complete`). Unknown and tombstoned ids survive — see the module
    /// docs.
    pub fn screen(&self, query: &ScreenQuery, id: MolId) -> bool {
        debug_assert_eq!(query.schema, self.schema, "screen under a foreign schema");
        let slot = match self.slots.get(id as usize).and_then(|s| s.as_ref()) {
            Some(slot) if !slot.tombstoned => slot,
            _ => return true,
        };
        query
            .graphs
            .iter()
            .any(|g| Self::accepts(g, query, &slot.digest))
    }

    /// Whether one query graph's requirements all pass against a
    /// digest (the molecule survives via this graph).
    fn accepts(graph: &GraphReq, query: &ScreenQuery, digest: &MolDigest) -> bool {
        for node in &graph.nodes {
            // Atom-list weakening: the node maps only to labels in the
            // mask, so the molecule must contain at least one of them.
            if let Some(mask) = node.any_labels {
                let present = (0..64u8).any(|l| mask >> l & 1 != 0 && digest.has_label(l));
                if !present {
                    return false;
                }
            }
            let (sig_digest, pair_digest) = match node.label {
                Some(label) => {
                    if !digest.has_label(label) {
                        return false;
                    }
                    match digest.entry(label) {
                        Some(e) => (e.sig, e.pair),
                        // Presence and entries are derived from the same
                        // nodes; a mismatch means a foreign digest —
                        // survive, never reject.
                        None => return true,
                    }
                }
                None => (digest.all_sig, digest.all_pair),
            };
            if node.pair != Signature::EMPTY
                && !pair_digest.dominates(&query.pair_schema, &node.pair)
            {
                return false;
            }
            if query.sig_radius >= 1
                && node.sig != Signature::EMPTY
                && !sig_digest.dominates(&query.schema, &node.sig)
            {
                return false;
            }
        }
        true
    }

    /// Corpus-level screen: every **live** molecule that survives
    /// `query`, ascending. First stage intersects the query's required
    /// posting lists (sorted-merge, rarest list first); the second
    /// stage digest-checks only those candidates — so cost scales with
    /// posting selectivity and the surviving set, not the corpus. A
    /// query graph with no posting requirements falls back to scanning
    /// every live digest (it can still reject via signatures).
    ///
    /// Equivalent, over live ids, to filtering with
    /// [`MoleculeIndex::screen`] — a proptest pins this.
    pub fn screen_corpus(&self, query: &ScreenQuery) -> Vec<MolId> {
        let mut out: Vec<MolId> = Vec::new();
        for g in &query.graphs {
            match self.candidates(g) {
                Some(candidates) => {
                    for id in candidates {
                        if !self.is_tombstoned(id)
                            && self.digest(id).is_some_and(|d| Self::accepts(g, query, d))
                        {
                            out.push(id);
                        }
                    }
                }
                None => {
                    for (i, slot) in self.slots.iter().enumerate() {
                        if let Some(slot) = slot {
                            if !slot.tombstoned && Self::accepts(g, query, &slot.digest) {
                                out.push(i as MolId);
                            }
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// First-stage candidates for one query graph: the intersection of
    /// its required posting lists, or `None` when it has no posting
    /// requirement (caller scans all live digests).
    fn candidates(&self, graph: &GraphReq) -> Option<Vec<MolId>> {
        let mut lists: Vec<&Vec<MolId>> = graph
            .labels
            .iter()
            .map(|&l| &self.label_postings[l as usize])
            .collect();
        for b in 0..self.pair_postings.len() {
            if graph.buckets & (1 << b) != 0 {
                lists.push(&self.pair_postings[b]);
            }
        }
        if lists.is_empty() {
            return None;
        }
        // Rarest-first: intersect into the shortest list.
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<MolId> = lists[0].clone();
        for list in &lists[1..] {
            if acc.is_empty() {
                break;
            }
            let mut next = Vec::with_capacity(acc.len());
            let mut i = 0;
            for &id in &acc {
                // Galloping would win on skewed lists; linear merge is
                // fine at molecular posting sizes.
                while i < list.len() && list[i] < id {
                    i += 1;
                }
                if i < list.len() && list[i] == id {
                    next.push(id);
                }
            }
            acc = next;
        }
        Some(acc)
    }

    /// Aggregate shape counters.
    pub fn stats(&self) -> IndexStats {
        let live = self
            .slots
            .iter()
            .flatten()
            .filter(|s| !s.tombstoned)
            .count();
        let present = self.slots.iter().flatten().count();
        IndexStats {
            molecules: self.slots.len(),
            live,
            tombstoned: present - live,
            label_postings: self.label_postings.iter().filter(|p| !p.is_empty()).count(),
            posting_entries: self.label_postings.iter().map(Vec::len).sum::<usize>()
                + self.pair_postings.iter().map(Vec::len).sum::<usize>(),
            digest_entries: self
                .slots
                .iter()
                .flatten()
                .map(|s| s.digest.labels.len())
                .sum(),
        }
    }

    /// The sorted label posting for `label` (diagnostics / tests).
    pub fn label_posting(&self, label: u8) -> &[MolId] {
        &self.label_postings[label as usize]
    }

    /// The sorted pair-bucket posting for `bucket` (diagnostics / tests).
    pub fn pair_posting(&self, bucket: usize) -> &[MolId] {
        &self.pair_postings[bucket]
    }

    /// Iterates `(id, digest, tombstoned)` over present slots,
    /// ascending — the serializer's walk.
    pub(crate) fn slots(&self) -> impl Iterator<Item = (MolId, &MolDigest, bool)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .map(|slot| (i as MolId, &slot.digest, slot.tombstoned))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmo_core::engine::EngineConfig;
    use sigmo_core::QueryPlan;

    fn chain(labels: &[u8]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (1..labels.len() as u32).map(|i| (i - 1, i)).collect();
        LabeledGraph::from_edges(labels, &edges).unwrap()
    }

    fn index_of(mols: &[LabeledGraph]) -> MoleculeIndex {
        let mut ix = MoleculeIndex::new(IndexConfig::default(), &LabelSchema::organic());
        for (i, m) in mols.iter().enumerate() {
            ix.add(i as MolId, m);
        }
        ix
    }

    fn screen_query(queries: &[LabeledGraph]) -> ScreenQuery {
        let plan = QueryPlan::build(queries, &EngineConfig::default());
        ScreenQuery::from_plan(&plan, IndexConfig::default().radius)
    }

    #[test]
    fn screens_out_missing_labels_and_keeps_matches() {
        let ix = index_of(&[chain(&[1, 1, 1]), chain(&[1, 2, 1]), chain(&[3, 3])]);
        let q = screen_query(&[chain(&[1, 2])]);
        assert!(!ix.screen(&q, 0), "no nitrogen at all");
        assert!(ix.screen(&q, 1), "contains the chain");
        assert!(!ix.screen(&q, 2), "neither label");
        assert_eq!(ix.screen_corpus(&q), vec![1]);
    }

    #[test]
    fn pair_digest_rejects_wrong_adjacency() {
        // Molecule 0 has both labels but never adjacent: 1-3-1 vs query 1-1.
        let ix = index_of(&[chain(&[1, 3, 1]), chain(&[1, 1, 3])]);
        let q = screen_query(&[chain(&[1, 1])]);
        assert!(!ix.screen(&q, 0), "no C–C pair anywhere");
        assert!(ix.screen(&q, 1));
        assert_eq!(ix.screen_corpus(&q), vec![1]);
    }

    #[test]
    fn any_query_graph_surviving_keeps_the_molecule() {
        let ix = index_of(&[chain(&[2, 2])]);
        let q = screen_query(&[chain(&[1, 1]), chain(&[2, 2])]);
        assert!(ix.screen(&q, 0), "second query matches");
        let q = screen_query(&[chain(&[1, 1]), chain(&[3, 3])]);
        assert!(!ix.screen(&q, 0), "every query rejects");
    }

    #[test]
    fn tombstones_leave_per_mol_screen_but_not_corpus_screen() {
        let mut ix = index_of(&[chain(&[1, 2]), chain(&[1, 2])]);
        let q = screen_query(&[chain(&[1, 2])]);
        assert_eq!(ix.screen_corpus(&q), vec![0, 1]);
        assert!(ix.remove(0));
        assert!(!ix.remove(0), "second remove is a no-op");
        assert_eq!(ix.screen_corpus(&q), vec![1], "tombstone never screened in");
        assert!(
            ix.screen(&q, 0),
            "in-flight retired ids still execute (conservative survive)"
        );
        let stats = ix.stats();
        assert_eq!((stats.live, stats.tombstoned), (1, 1));
        // Re-adding resurrects the slot.
        ix.add(0, &chain(&[1, 2]));
        assert_eq!(ix.screen_corpus(&q), vec![0, 1]);
    }

    #[test]
    fn unknown_ids_survive() {
        let ix = index_of(&[chain(&[1, 2])]);
        let q = screen_query(&[chain(&[3, 3])]);
        assert!(ix.screen(&q, 99), "unknown id must never be rejected");
    }
}
