//! Structural graph metrics: connectivity, eccentricity, diameter.
//!
//! Figure 7 of the paper groups query graphs by diameter; the experiment
//! harness uses [`diameter`] to bucket queries the same way.

use crate::csrgo::CsrGo;
use crate::graph::{LabeledGraph, NodeId};
use std::collections::VecDeque;

/// Eccentricity of `source` in `g`: the greatest BFS distance to any node
/// reachable from `source`.
pub fn eccentricity(g: &LabeledGraph, source: NodeId) -> u32 {
    let mut dist = vec![u32::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    let mut ecc = 0;
    while let Some(v) = queue.pop_front() {
        for &(u, _) in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                ecc = ecc.max(dist[u as usize]);
                queue.push_back(u);
            }
        }
    }
    ecc
}

/// Diameter of a connected graph: the maximum eccentricity over all nodes.
/// For a disconnected graph this returns the largest intra-component
/// diameter. Returns 0 for graphs with fewer than 2 nodes.
pub fn diameter(g: &LabeledGraph) -> u32 {
    (0..g.num_nodes() as NodeId)
        .map(|v| eccentricity(g, v))
        .max()
        .unwrap_or(0)
}

/// Tests whether `g` is connected (the empty graph counts as connected).
pub fn is_connected(g: &LabeledGraph) -> bool {
    if g.num_nodes() <= 1 {
        return true;
    }
    let mut seen = vec![false; g.num_nodes()];
    let mut queue = VecDeque::new();
    seen[0] = true;
    queue.push_back(0 as NodeId);
    let mut count = 1;
    while let Some(v) = queue.pop_front() {
        for &(u, _) in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                count += 1;
                queue.push_back(u);
            }
        }
    }
    count == g.num_nodes()
}

/// Connected components of a [`CsrGo`] batch, as a component id per global
/// node. For well-formed molecular batches every component lies within one
/// graph's node range (each molecule is connected).
pub fn connected_components(batch: &CsrGo) -> Vec<u32> {
    let n = batch.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next_comp = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next_comp;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in batch.neighbors(v) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = next_comp;
                    queue.push_back(u);
                }
            }
        }
        next_comp += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_diameter() {
        let g = LabeledGraph::from_edges(&[0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), 3);
        assert_eq!(eccentricity(&g, 1), 2);
    }

    #[test]
    fn cycle_diameter() {
        let g =
            LabeledGraph::from_edges(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
                .unwrap();
        assert_eq!(diameter(&g), 3);
    }

    #[test]
    fn star_diameter() {
        let g = LabeledGraph::from_edges(&[0; 5], &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(diameter(&g), 2);
        assert_eq!(eccentricity(&g, 0), 1);
    }

    #[test]
    fn single_node_and_empty() {
        assert_eq!(diameter(&LabeledGraph::with_uniform_labels(1, 0)), 0);
        assert_eq!(diameter(&LabeledGraph::new()), 0);
        assert!(is_connected(&LabeledGraph::new()));
        assert!(is_connected(&LabeledGraph::with_uniform_labels(1, 0)));
    }

    #[test]
    fn connectivity_detection() {
        let connected = LabeledGraph::from_edges(&[0; 3], &[(0, 1), (1, 2)]).unwrap();
        assert!(is_connected(&connected));
        let disconnected = LabeledGraph::from_edges(&[0; 3], &[(0, 1)]).unwrap();
        assert!(!is_connected(&disconnected));
    }

    #[test]
    fn components_respect_graph_boundaries() {
        let g0 = LabeledGraph::from_edges(&[0; 2], &[(0, 1)]).unwrap();
        let g1 = LabeledGraph::from_edges(&[0; 3], &[(0, 1), (1, 2)]).unwrap();
        let batch = CsrGo::from_graphs(&[g0, g1]);
        let comp = connected_components(&batch);
        assert_eq!(comp, vec![0, 0, 1, 1, 1]);
    }
}
