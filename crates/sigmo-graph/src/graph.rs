//! Simple, undirected, labeled graphs with an adjacency-list builder API.

use crate::predicate::{NodeAttrs, NodePredicate};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Node identifier, local to a single [`LabeledGraph`] (or global within a
/// [`crate::CsrGo`] batch).
pub type NodeId = u32;

/// Node label. In the molecular domain this is an element code produced by
/// the `sigmo-mol` crate; the filter only requires labels to be small dense
/// integers so signature bit groups can be assigned per label.
pub type Label = u8;

/// Edge label (bond kind in the molecular domain).
pub type EdgeLabel = u8;

/// Wildcard node label: matches any data-node label. Used to implement the
/// paper's future-work extension (wildcard atoms) — see `sigmo-core`.
pub const WILDCARD_LABEL: Label = u8::MAX;

/// Wildcard edge label: matches any data-edge label (wildcard bonds).
pub const WILDCARD_EDGE: EdgeLabel = u8::MAX;

/// Errors produced when constructing or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a node that does not exist.
    NodeOutOfRange { node: NodeId, len: usize },
    /// A self-loop was inserted; molecular graphs are simple.
    SelfLoop { node: NodeId },
    /// The same undirected edge was inserted twice.
    DuplicateEdge { a: NodeId, b: NodeId },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range (graph has {len} nodes)")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            GraphError::DuplicateEdge { a, b } => write!(f, "duplicate edge ({a}, {b})"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple, finite, undirected, node- and edge-labeled graph.
///
/// The representation is an adjacency list plus a parallel list of edge
/// labels; it is the mutable "builder" form that gets frozen into [`crate::Csr`]
/// or batched into [`crate::CsrGo`] for the GPU-style kernels.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledGraph {
    labels: Vec<Label>,
    adj: Vec<Vec<(NodeId, EdgeLabel)>>,
    num_edges: usize,
    /// Nonzero formal charges, sparse and sorted by node id. Uncharged
    /// graphs carry an empty vector, so equality and hashing of graphs
    /// built before charges existed are unchanged.
    #[serde(default)]
    charges: Vec<(NodeId, i8)>,
    /// Per-node query predicates, sparse and sorted by node id. Only query
    /// graphs compiled from SMARTS carry these; data graphs never do.
    #[serde(default)]
    preds: Vec<(NodeId, NodePredicate)>,
}

impl LabeledGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` nodes all carrying the same label and no
    /// edges.
    pub fn with_uniform_labels(n: usize, label: Label) -> Self {
        Self {
            labels: vec![label; n],
            adj: vec![Vec::new(); n],
            num_edges: 0,
            charges: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// Creates a graph from a label slice and an edge list (unlabeled edges
    /// get edge label 0). Convenience for tests and examples.
    pub fn from_edges(labels: &[Label], edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut g = Self::new();
        for &l in labels {
            g.add_node(l);
        }
        for &(a, b) in edges {
            g.add_edge(a, b, 0)?;
        }
        Ok(g)
    }

    /// Adds a node with the given label, returning its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = self.labels.len() as NodeId;
        self.labels.push(label);
        self.adj.push(Vec::new());
        id
    }

    /// Sets node `v`'s formal charge. Zero (the default) removes the
    /// entry, so an explicitly neutralized graph equals a never-charged
    /// one.
    pub fn set_charge(&mut self, v: NodeId, charge: i8) {
        debug_assert!((v as usize) < self.labels.len());
        match self.charges.binary_search_by_key(&v, |&(n, _)| n) {
            Ok(i) if charge == 0 => {
                self.charges.remove(i);
            }
            Ok(i) => self.charges[i].1 = charge,
            Err(_) if charge == 0 => {}
            Err(i) => self.charges.insert(i, (v, charge)),
        }
    }

    /// Node `v`'s formal charge (0 unless set).
    pub fn charge(&self, v: NodeId) -> i8 {
        self.charges
            .binary_search_by_key(&v, |&(n, _)| n)
            .map(|i| self.charges[i].1)
            .unwrap_or(0)
    }

    /// The sparse nonzero-charge table, sorted by node id.
    pub fn charges(&self) -> &[(NodeId, i8)] {
        &self.charges
    }

    /// True when any node carries a nonzero formal charge.
    pub fn has_charges(&self) -> bool {
        !self.charges.is_empty()
    }

    /// Attaches a query predicate to node `v` (replacing any existing
    /// one). Trivial predicates remove the entry instead of storing an
    /// always-true constraint.
    pub fn set_predicate(&mut self, v: NodeId, pred: NodePredicate) {
        debug_assert!((v as usize) < self.labels.len());
        match self.preds.binary_search_by_key(&v, |(n, _)| *n) {
            Ok(i) if pred.is_trivial() => {
                self.preds.remove(i);
            }
            Ok(i) => self.preds[i].1 = pred,
            Err(_) if pred.is_trivial() => {}
            Err(i) => self.preds.insert(i, (v, pred)),
        }
    }

    /// The predicate attached to node `v`, if any.
    pub fn predicate(&self, v: NodeId) -> Option<&NodePredicate> {
        self.preds
            .binary_search_by_key(&v, |(n, _)| *n)
            .ok()
            .map(|i| &self.preds[i].1)
    }

    /// The sparse predicate table, sorted by node id.
    pub fn predicates(&self) -> &[(NodeId, NodePredicate)] {
        &self.preds
    }

    /// True when any node carries a predicate.
    pub fn has_predicates(&self) -> bool {
        !self.preds.is_empty()
    }

    /// Per-node attributes (degree, H-neighbor count, charge, smallest
    /// ring) for predicate evaluation — see [`NodeAttrs`].
    pub fn node_attrs(&self) -> NodeAttrs {
        let charges: Vec<i8> = (0..self.labels.len() as NodeId)
            .map(|v| self.charge(v))
            .collect();
        let adj: Vec<Vec<NodeId>> = self
            .adj
            .iter()
            .map(|nbrs| nbrs.iter().map(|&(u, _)| u).collect())
            .collect();
        NodeAttrs::build(&self.labels, &charges, &adj)
    }

    /// Adds an undirected labeled edge. Fails on self-loops, duplicate
    /// edges, and out-of-range endpoints (the graph stays simple).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, label: EdgeLabel) -> Result<(), GraphError> {
        let n = self.labels.len();
        if (a as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: a, len: n });
        }
        if (b as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: b, len: n });
        }
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        if self.adj[a as usize].iter().any(|&(v, _)| v == b) {
            return Err(GraphError::DuplicateEdge { a, b });
        }
        self.adj[a as usize].push((b, label));
        self.adj[b as usize].push((a, label));
        self.num_edges += 1;
        Ok(())
    }

    /// Number of nodes (`n` in the paper's notation).
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges (`m`).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns true when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of node `v`.
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v as usize]
    }

    /// All node labels in node-id order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Neighbors of `v` with edge labels.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeLabel)] {
        &self.adj[v as usize]
    }

    /// Returns the label of edge `(a, b)` if present.
    pub fn edge_label(&self, a: NodeId, b: NodeId) -> Option<EdgeLabel> {
        self.adj[a as usize]
            .iter()
            .find(|&&(v, _)| v == b)
            .map(|&(_, l)| l)
    }

    /// Tests whether the undirected edge `(a, b)` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_label(a, b).is_some()
    }

    /// Iterator over all undirected edges as `(a, b, label)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeLabel)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, nbrs)| {
            let a = a as NodeId;
            nbrs.iter()
                .filter(move |&&(b, _)| a < b)
                .map(move |&(b, l)| (a, b, l))
        })
    }

    /// Sparsity of the graph: `1 - m / (n(n-1)/2)`. Molecular graphs are
    /// ≥ 95% sparse (paper §3).
    pub fn sparsity(&self) -> f64 {
        let n = self.num_nodes() as f64;
        if n < 2.0 {
            return 1.0;
        }
        1.0 - (self.num_edges as f64) / (n * (n - 1.0) / 2.0)
    }

    /// The subgraph induced by `nodes`, relabeling nodes to `0..nodes.len()`
    /// in the order given. Duplicate entries in `nodes` are not allowed.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> LabeledGraph {
        let mut map = vec![u32::MAX; self.num_nodes()];
        let mut g = LabeledGraph::new();
        for (i, &v) in nodes.iter().enumerate() {
            debug_assert_eq!(map[v as usize], u32::MAX, "duplicate node in induced set");
            map[v as usize] = i as u32;
            let nv = g.add_node(self.label(v));
            g.set_charge(nv, self.charge(v));
            if let Some(p) = self.predicate(v) {
                g.set_predicate(nv, p.clone());
            }
        }
        for &v in nodes {
            let nv = map[v as usize];
            for &(u, l) in self.neighbors(v) {
                let nu = map[u as usize];
                if nu != u32::MAX && nv < nu {
                    g.add_edge(nv, nu, l).expect("induced edge must be valid");
                }
            }
        }
        g
    }

    /// Checks that a candidate mapping `f: query node -> data node` (this
    /// graph is the data graph) is a valid embedding of `query`:
    /// label-preserving, injective, edge-preserving with matching edge
    /// labels, and satisfying every query-node [`NodePredicate`]. Wildcard
    /// labels on the query side match anything. Raw formal charges are
    /// *not* a matching constraint — only an explicit charge predicate is.
    ///
    /// This is the reference validity predicate used by tests and property
    /// checks; engines must only ever report mappings for which this holds.
    pub fn is_valid_embedding(&self, query: &LabeledGraph, f: &[NodeId]) -> bool {
        if f.len() != query.num_nodes() {
            return false;
        }
        // Injectivity + label preservation.
        let mut seen = vec![false; self.num_nodes()];
        for (q, &d) in f.iter().enumerate() {
            if (d as usize) >= self.num_nodes() || seen[d as usize] {
                return false;
            }
            seen[d as usize] = true;
            let ql = query.label(q as NodeId);
            if ql != WILDCARD_LABEL && ql != self.label(d) {
                return false;
            }
        }
        // Node predicates, evaluated against this graph's attribute table.
        if query.has_predicates() {
            let attrs = self.node_attrs();
            for (q, pred) in query.predicates() {
                if !pred.matches(&attrs, f[*q as usize]) {
                    return false;
                }
            }
        }
        // Edge preservation with edge labels.
        for (a, b, l) in query.edges() {
            match self.edge_label(f[a as usize], f[b as usize]) {
                Some(dl) => {
                    if l != WILDCARD_EDGE && l != dl {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> LabeledGraph {
        LabeledGraph::from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn build_and_query_basic() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.label(1), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = LabeledGraph::with_uniform_labels(2, 0);
        assert_eq!(g.add_edge(0, 0, 0), Err(GraphError::SelfLoop { node: 0 }));
    }

    #[test]
    fn rejects_duplicate_edge_both_orientations() {
        let mut g = LabeledGraph::with_uniform_labels(2, 0);
        g.add_edge(0, 1, 0).unwrap();
        assert_eq!(
            g.add_edge(0, 1, 0),
            Err(GraphError::DuplicateEdge { a: 0, b: 1 })
        );
        assert_eq!(
            g.add_edge(1, 0, 1),
            Err(GraphError::DuplicateEdge { a: 1, b: 0 })
        );
    }

    #[test]
    fn rejects_out_of_range_endpoint() {
        let mut g = LabeledGraph::with_uniform_labels(2, 0);
        assert_eq!(
            g.add_edge(0, 5, 0),
            Err(GraphError::NodeOutOfRange { node: 5, len: 2 })
        );
    }

    #[test]
    fn edge_labels_are_preserved_symmetrically() {
        let mut g = LabeledGraph::with_uniform_labels(3, 0);
        g.add_edge(0, 1, 2).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        assert_eq!(g.edge_label(0, 1), Some(2));
        assert_eq!(g.edge_label(1, 0), Some(2));
        assert_eq!(g.edge_label(2, 1), Some(1));
        assert_eq!(g.edge_label(0, 2), None);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = path3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 0), (1, 2, 0)]);
    }

    #[test]
    fn sparsity_of_small_graphs() {
        let g = path3();
        // 2 edges out of 3 possible.
        assert!((g.sparsity() - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
        let empty = LabeledGraph::new();
        assert_eq!(empty.sparsity(), 1.0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // Triangle 0-1-2 plus pendant 3.
        let mut g = LabeledGraph::from_edges(&[0, 1, 2, 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        g.add_edge(2, 3, 0).unwrap();
        let sub = g.induced_subgraph(&[0, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2); // (0,2) and (2,3)
        assert_eq!(sub.labels(), &[0, 2, 3]);
        assert!(sub.has_edge(0, 1)); // old (0,2)
        assert!(sub.has_edge(1, 2)); // old (2,3)
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn valid_embedding_accepts_identity() {
        let g = path3();
        assert!(g.is_valid_embedding(&g, &[0, 1, 2]));
    }

    #[test]
    fn valid_embedding_rejects_label_mismatch() {
        let g = path3();
        let q = LabeledGraph::from_edges(&[1, 1], &[(0, 1)]).unwrap();
        assert!(!g.is_valid_embedding(&q, &[0, 1]));
    }

    #[test]
    fn valid_embedding_rejects_non_injective() {
        let g = path3();
        let q = LabeledGraph::from_edges(&[0, 0], &[]).unwrap();
        assert!(!g.is_valid_embedding(&q, &[0, 0]));
    }

    #[test]
    fn valid_embedding_rejects_missing_edge() {
        let g = path3();
        let q = LabeledGraph::from_edges(&[0, 0], &[(0, 1)]).unwrap();
        assert!(!g.is_valid_embedding(&q, &[0, 2]));
    }

    #[test]
    fn wildcard_label_matches_any_node() {
        let g = path3();
        let q = LabeledGraph::from_edges(&[WILDCARD_LABEL, WILDCARD_LABEL], &[(0, 1)]).unwrap();
        assert!(g.is_valid_embedding(&q, &[0, 1]));
        assert!(g.is_valid_embedding(&q, &[2, 1]));
    }

    #[test]
    fn wildcard_edge_matches_any_bond() {
        let mut g = LabeledGraph::with_uniform_labels(2, 0);
        g.add_edge(0, 1, 3).unwrap();
        let mut q = LabeledGraph::with_uniform_labels(2, 0);
        q.add_edge(0, 1, WILDCARD_EDGE).unwrap();
        assert!(g.is_valid_embedding(&q, &[0, 1]));
        let mut q2 = LabeledGraph::with_uniform_labels(2, 0);
        q2.add_edge(0, 1, 1).unwrap();
        assert!(!g.is_valid_embedding(&q2, &[0, 1]));
    }
}
