//! BFS utilities with reusable frontiers and ring-at-distance-`k` iteration.
//!
//! The filter phase computes node signatures over neighborhoods of growing
//! radius. To avoid restarting the BFS from scratch at each refinement
//! iteration, the paper caches the frontier after every step and resumes
//! from it (§4.4). [`Bfs`] implements exactly that: `advance()` performs one
//! BFS level and exposes the *ring* `N^k(v) \ N^{k-1}(v)` — the nodes at
//! distance exactly `k` — which is all the signature update needs.

use crate::csrgo::CsrGo;
use crate::graph::NodeId;

/// Incremental single-source BFS over a [`CsrGo`] batch.
///
/// Because CSR-GO keeps each graph's nodes in a contiguous id range and all
/// edges intra-graph, a BFS started inside one molecule never leaves it: the
/// "join all graphs into one disconnected graph" trick from the paper is
/// safe.
pub struct Bfs {
    /// Distance from the source; `u32::MAX` = unvisited.
    dist: Vec<u32>,
    /// Nodes at the current depth (the cached frontier).
    frontier: Vec<NodeId>,
    /// Scratch for the next frontier.
    next: Vec<NodeId>,
    /// Depth of `frontier`.
    depth: u32,
    source: NodeId,
}

impl Bfs {
    /// Starts a BFS at `source`. The frontier is initialized to the source
    /// itself at depth 0.
    pub fn new(num_nodes: usize, source: NodeId) -> Self {
        let mut dist = vec![u32::MAX; num_nodes];
        dist[source as usize] = 0;
        Self {
            dist,
            frontier: vec![source],
            next: Vec::new(),
            depth: 0,
            source,
        }
    }

    /// Resets the traversal to a new source, reusing allocations. Only the
    /// entries touched by the previous run are cleared, so a reset after a
    /// shallow traversal over a huge batch stays cheap.
    pub fn reset(&mut self, source: NodeId) {
        for &v in &self.frontier {
            self.dist[v as usize] = u32::MAX;
        }
        // Entries of earlier levels were recorded in dist only; walk back via
        // full clear when the previous traversal was deep. We track touched
        // nodes implicitly through rings, so clear lazily:
        for d in self.dist.iter_mut() {
            if *d != u32::MAX {
                *d = u32::MAX;
            }
        }
        self.dist[source as usize] = 0;
        self.frontier.clear();
        self.frontier.push(source);
        self.next.clear();
        self.depth = 0;
        self.source = source;
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Depth of the current frontier.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Nodes at distance exactly [`Bfs::depth`] from the source (the current
    /// ring). At depth 0 this is just the source.
    pub fn ring(&self) -> &[NodeId] {
        &self.frontier
    }

    /// Advances one BFS level over `batch`, returning the new ring (nodes at
    /// distance `depth + 1`). Returns an empty slice once the component is
    /// exhausted; further calls keep returning empty.
    pub fn advance(&mut self, batch: &CsrGo) -> &[NodeId] {
        self.next.clear();
        for &v in &self.frontier {
            for &u in batch.neighbors(v) {
                if self.dist[u as usize] == u32::MAX {
                    self.dist[u as usize] = self.depth + 1;
                    self.next.push(u);
                }
            }
        }
        std::mem::swap(&mut self.frontier, &mut self.next);
        self.depth += 1;
        &self.frontier
    }

    /// Distance from the source to `v`, if reached so far.
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        match self.dist[v as usize] {
            u32::MAX => None,
            d => Some(d),
        }
    }

    /// Runs the BFS to exhaustion and returns the eccentricity of the source
    /// within its component (the largest finite distance).
    pub fn run_to_exhaustion(&mut self, batch: &CsrGo) -> u32 {
        let mut ecc = self.depth;
        loop {
            let ring = self.advance(batch);
            if ring.is_empty() {
                return ecc;
            }
            ecc = self.depth;
        }
    }
}

/// Convenience iterator over rings: yields `(k, nodes at distance k)` for
/// `k = 1, 2, ...` until the component is exhausted.
pub struct RingIter<'a> {
    bfs: Bfs,
    batch: &'a CsrGo,
}

impl<'a> RingIter<'a> {
    /// Creates a ring iterator from `source` over `batch`.
    pub fn new(batch: &'a CsrGo, source: NodeId) -> Self {
        Self {
            bfs: Bfs::new(batch.num_nodes(), source),
            batch,
        }
    }
}

impl<'a> Iterator for RingIter<'a> {
    type Item = (u32, Vec<NodeId>);

    fn next(&mut self) -> Option<Self::Item> {
        let ring = self.bfs.advance(self.batch).to_vec();
        if ring.is_empty() {
            None
        } else {
            Some((self.bfs.depth(), ring))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LabeledGraph;

    fn path5_batch() -> CsrGo {
        let g = LabeledGraph::from_edges(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        CsrGo::from_graphs(&[g])
    }

    #[test]
    fn rings_of_a_path() {
        let b = path5_batch();
        let rings: Vec<_> = RingIter::new(&b, 0).collect();
        assert_eq!(rings.len(), 4);
        assert_eq!(rings[0], (1, vec![1]));
        assert_eq!(rings[1], (2, vec![2]));
        assert_eq!(rings[3], (4, vec![4]));
    }

    #[test]
    fn rings_from_center() {
        let b = path5_batch();
        let rings: Vec<_> = RingIter::new(&b, 2).collect();
        assert_eq!(rings.len(), 2);
        let mut r1 = rings[0].1.clone();
        r1.sort_unstable();
        assert_eq!(r1, vec![1, 3]);
        let mut r2 = rings[1].1.clone();
        r2.sort_unstable();
        assert_eq!(r2, vec![0, 4]);
    }

    #[test]
    fn distances_recorded() {
        let b = path5_batch();
        let mut bfs = Bfs::new(b.num_nodes(), 0);
        bfs.run_to_exhaustion(&b);
        for v in 0..5u32 {
            assert_eq!(bfs.distance(v), Some(v));
        }
    }

    #[test]
    fn bfs_does_not_cross_graph_boundaries() {
        let g0 = LabeledGraph::from_edges(&[0; 3], &[(0, 1), (1, 2)]).unwrap();
        let g1 = LabeledGraph::from_edges(&[0; 3], &[(0, 1), (1, 2)]).unwrap();
        let b = CsrGo::from_graphs(&[g0, g1]);
        let mut bfs = Bfs::new(b.num_nodes(), 0);
        bfs.run_to_exhaustion(&b);
        assert_eq!(bfs.distance(2), Some(2));
        for v in 3..6 {
            assert_eq!(bfs.distance(v), None, "node {v} in other graph reached");
        }
    }

    #[test]
    fn exhausted_bfs_keeps_returning_empty() {
        let b = path5_batch();
        let mut bfs = Bfs::new(b.num_nodes(), 0);
        bfs.run_to_exhaustion(&b);
        assert!(bfs.advance(&b).is_empty());
        assert!(bfs.advance(&b).is_empty());
    }

    #[test]
    fn eccentricity_from_endpoints_and_center() {
        let b = path5_batch();
        assert_eq!(Bfs::new(5, 0).run_to_exhaustion(&b), 4);
        assert_eq!(Bfs::new(5, 2).run_to_exhaustion(&b), 2);
    }

    #[test]
    fn reset_reuses_allocations_correctly() {
        let b = path5_batch();
        let mut bfs = Bfs::new(b.num_nodes(), 0);
        bfs.run_to_exhaustion(&b);
        bfs.reset(4);
        assert_eq!(bfs.depth(), 0);
        assert_eq!(bfs.ring(), &[4]);
        assert_eq!(bfs.run_to_exhaustion(&b), 4);
        assert_eq!(bfs.distance(0), Some(4));
    }
}
