//! Compressed Sparse Row encoding of a single labeled graph.

use crate::graph::{EdgeLabel, Label, LabeledGraph, NodeId};
use serde::{Deserialize, Serialize};

/// CSR representation of one [`LabeledGraph`].
///
/// `row_offsets` has `n + 1` entries; the neighbors of node `v` live in
/// `column_indices[row_offsets[v] .. row_offsets[v + 1]]` with their edge
/// labels in the parallel `edge_labels` array. Neighbor lists are sorted by
/// node id, which makes `has_edge` a binary search and gives deterministic
/// traversal orders in the kernels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    row_offsets: Vec<u32>,
    column_indices: Vec<NodeId>,
    edge_labels: Vec<EdgeLabel>,
    labels: Vec<Label>,
}

impl Csr {
    /// Freezes a [`LabeledGraph`] into CSR form.
    pub fn from_graph(g: &LabeledGraph) -> Self {
        let n = g.num_nodes();
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut column_indices = Vec::with_capacity(2 * g.num_edges());
        let mut edge_labels = Vec::with_capacity(2 * g.num_edges());
        row_offsets.push(0);
        for v in 0..n as NodeId {
            let mut nbrs: Vec<(NodeId, EdgeLabel)> = g.neighbors(v).to_vec();
            nbrs.sort_unstable_by_key(|&(u, _)| u);
            for (u, l) in nbrs {
                column_indices.push(u);
                edge_labels.push(l);
            }
            row_offsets.push(column_indices.len() as u32);
        }
        Self {
            row_offsets,
            column_indices,
            edge_labels,
            labels: g.labels().to_vec(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.column_indices.len() / 2
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v as usize]
    }

    /// All labels in node order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Neighbor ids of `v` (sorted).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.column_indices[lo..hi]
    }

    /// Edge labels parallel to [`Csr::neighbors`].
    #[inline]
    pub fn neighbor_edge_labels(&self, v: NodeId) -> &[EdgeLabel] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.edge_labels[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]) as usize
    }

    /// Binary-search edge lookup; returns the edge label when present.
    #[inline]
    pub fn edge_label(&self, a: NodeId, b: NodeId) -> Option<EdgeLabel> {
        let nbrs = self.neighbors(a);
        nbrs.binary_search(&b)
            .ok()
            .map(|i| self.neighbor_edge_labels(a)[i])
    }

    /// Tests edge existence.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Raw row-offsets array (length `n + 1`).
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// Raw column-indices array (length `2m`).
    pub fn column_indices(&self) -> &[NodeId] {
        &self.column_indices
    }

    /// Heap bytes consumed by the representation (used for the memory
    /// accounting in §5.1.3).
    pub fn memory_bytes(&self) -> usize {
        self.row_offsets.len() * 4
            + self.column_indices.len() * 4
            + self.edge_labels.len()
            + self.labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        // 0-1, 1-2, 2-0 triangle with pendant 3 on node 2.
        let mut g = LabeledGraph::from_edges(&[5, 6, 7, 8], &[(1, 0), (1, 2), (2, 0)]).unwrap();
        g.add_edge(2, 3, 4).unwrap();
        g
    }

    #[test]
    fn csr_round_trips_structure() {
        let g = sample();
        let c = Csr::from_graph(&g);
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.num_edges(), 4);
        for v in 0..4u32 {
            assert_eq!(c.degree(v), g.degree(v));
            assert_eq!(c.label(v), g.label(v));
            let mut expect: Vec<u32> = g.neighbors(v).iter().map(|&(u, _)| u).collect();
            expect.sort_unstable();
            assert_eq!(c.neighbors(v), expect.as_slice());
        }
    }

    #[test]
    fn csr_neighbors_are_sorted() {
        let c = Csr::from_graph(&sample());
        for v in 0..4u32 {
            let nbrs = c.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn csr_edge_lookup_and_labels() {
        let c = Csr::from_graph(&sample());
        assert_eq!(c.edge_label(2, 3), Some(4));
        assert_eq!(c.edge_label(3, 2), Some(4));
        assert_eq!(c.edge_label(0, 3), None);
        assert!(c.has_edge(0, 1));
        assert!(!c.has_edge(1, 3));
    }

    #[test]
    fn csr_empty_graph() {
        let c = Csr::from_graph(&LabeledGraph::new());
        assert_eq!(c.num_nodes(), 0);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.row_offsets(), &[0]);
    }

    #[test]
    fn csr_row_offsets_match_figure3_shape() {
        // Figure 3's G0: nodes 0..5 with edges per its column indices.
        let g =
            LabeledGraph::from_edges(&[0; 5], &[(0, 1), (0, 4), (1, 2), (1, 3), (2, 3), (3, 4)])
                .unwrap();
        let c = Csr::from_graph(&g);
        assert_eq!(c.row_offsets(), &[0, 2, 5, 7, 10, 12]);
        assert_eq!(c.neighbors(1), &[0, 2, 3]);
    }

    #[test]
    fn memory_bytes_counts_all_arrays() {
        let c = Csr::from_graph(&sample());
        // 5 row offsets * 4 + 8 cols * 4 + 8 edge labels + 4 node labels.
        assert_eq!(c.memory_bytes(), 5 * 4 + 8 * 4 + 8 + 4);
    }
}
