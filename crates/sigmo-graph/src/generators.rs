//! Random labeled-graph generators beyond the molecular domain.
//!
//! The paper's conclusion notes the filter strategy "is broadly applicable
//! to labeled sparse graphs and can also be applied in domains such as
//! malware detection and graph database queries." These generators provide
//! non-molecular labeled sparse graphs — random trees, sparse
//! Erdős–Rényi-style graphs, and call-graph-shaped DAost skeletons — used
//! by the `beyond_molecules` example, property tests, and benches.

use crate::graph::{Label, LabeledGraph, NodeId};

/// Simple deterministic xorshift generator so this crate stays free of the
/// `rand` dependency (only used for test-shaped data).
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (a zero seed is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        Self(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A uniformly random labeled tree on `n` nodes (random attachment), with
/// labels drawn from `0..num_labels`.
pub fn random_tree(n: usize, num_labels: u8, seed: u64) -> LabeledGraph {
    let mut rng = XorShift::new(seed);
    let mut g = LabeledGraph::new();
    for _ in 0..n {
        g.add_node((rng.below(num_labels as usize)) as Label);
    }
    for v in 1..n as NodeId {
        let u = rng.below(v as usize) as NodeId;
        g.add_edge(u, v, 1).expect("tree edge");
    }
    g
}

/// A connected sparse random graph: a random tree plus `extra_edges`
/// random chords (duplicates silently skipped), labels from
/// `0..num_labels`. Stays sparse when `extra_edges` is small relative to
/// `n²`, matching the paper's ≥ 95% sparsity regime.
pub fn random_sparse_graph(
    n: usize,
    extra_edges: usize,
    num_labels: u8,
    seed: u64,
) -> LabeledGraph {
    let mut g = random_tree(n, num_labels, seed);
    let mut rng = XorShift::new(seed ^ 0xDEAD_BEEF);
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 + 20 {
        attempts += 1;
        let a = rng.below(n) as NodeId;
        let b = rng.below(n) as NodeId;
        if a != b && g.add_edge(a, b, 1 + (rng.below(3)) as u8).is_ok() {
            added += 1;
        }
    }
    g
}

/// A call-graph-shaped labeled graph: layered, edges mostly forward by one
/// or two layers, labels encoding "function kinds" — the malware-detection
/// workload shape the paper's conclusion gestures at.
pub fn random_callgraph(layers: usize, width: usize, num_labels: u8, seed: u64) -> LabeledGraph {
    let mut rng = XorShift::new(seed);
    let mut g = LabeledGraph::new();
    let n = layers * width;
    for _ in 0..n {
        g.add_node((rng.below(num_labels as usize)) as Label);
    }
    let node = |layer: usize, i: usize| (layer * width + i) as NodeId;
    // Connect each node to ≥ 1 callee in the next layer; occasional skips.
    for l in 0..layers - 1 {
        for i in 0..width {
            let callee = rng.below(width);
            let _ = g.add_edge(node(l, i), node(l + 1, callee), 1);
            if rng.below(3) == 0 && l + 2 < layers {
                let skip = rng.below(width);
                let _ = g.add_edge(node(l, i), node(l + 2, skip), 1);
            }
        }
    }
    // Tie stray components to the first node so queries stay meaningful.
    let comp = crate::metrics::connected_components(&crate::csrgo::CsrGo::from_graphs(
        std::slice::from_ref(&g),
    ));
    for v in 1..n as NodeId {
        if comp[v as usize] != comp[0] && g.degree(v) == 0 {
            let _ = g.add_edge(0, v, 1);
        }
    }
    g
}

/// Samples a connected induced subgraph of `size` nodes by randomized BFS
/// growth — the generic analogue of the molecular query extractor.
pub fn random_connected_subgraph(g: &LabeledGraph, size: usize, seed: u64) -> Option<LabeledGraph> {
    if g.num_nodes() < size || size == 0 {
        return None;
    }
    let mut rng = XorShift::new(seed);
    for _attempt in 0..16 {
        let start = rng.below(g.num_nodes()) as NodeId;
        let mut chosen = vec![start];
        let mut in_set = vec![false; g.num_nodes()];
        in_set[start as usize] = true;
        let mut frontier: Vec<NodeId> = g.neighbors(start).iter().map(|&(u, _)| u).collect();
        while chosen.len() < size && !frontier.is_empty() {
            let v = frontier.swap_remove(rng.below(frontier.len()));
            if in_set[v as usize] {
                continue;
            }
            in_set[v as usize] = true;
            chosen.push(v);
            for &(u, _) in g.neighbors(v) {
                if !in_set[u as usize] {
                    frontier.push(u);
                }
            }
        }
        if chosen.len() == size {
            return Some(g.induced_subgraph(&chosen));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::is_connected;

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..5 {
            let g = random_tree(40, 4, seed);
            assert_eq!(g.num_nodes(), 40);
            assert_eq!(g.num_edges(), 39);
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn sparse_graph_is_connected_and_sparse() {
        let g = random_sparse_graph(100, 30, 5, 7);
        assert!(is_connected(&g));
        assert!(g.sparsity() >= 0.95, "sparsity {}", g.sparsity());
        assert!(g.num_edges() >= 99);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_tree(20, 3, 9), random_tree(20, 3, 9));
        assert_eq!(
            random_sparse_graph(30, 10, 4, 1),
            random_sparse_graph(30, 10, 4, 1)
        );
        assert_eq!(random_callgraph(4, 5, 6, 2), random_callgraph(4, 5, 6, 2));
    }

    #[test]
    fn callgraph_has_expected_shape() {
        let g = random_callgraph(5, 8, 6, 3);
        assert_eq!(g.num_nodes(), 40);
        assert!(g.num_edges() >= 32, "every non-final layer node calls out");
        assert!(g.labels().iter().all(|&l| l < 6));
    }

    #[test]
    fn subgraph_sampler_returns_connected_induced_pieces() {
        let g = random_sparse_graph(60, 20, 4, 11);
        for size in [2usize, 5, 10] {
            let sub = random_connected_subgraph(&g, size, 13).unwrap();
            assert_eq!(sub.num_nodes(), size);
            assert!(is_connected(&sub));
        }
        assert!(random_connected_subgraph(&g, 61, 1).is_none());
    }

    #[test]
    fn xorshift_below_is_in_range() {
        let mut rng = XorShift::new(42);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        // Zero seed does not get stuck at zero.
        let mut z = XorShift::new(0);
        assert_ne!(z.next_u64(), 0);
    }
}
