//! CSR-GO: CSR extended with a *graph offsets* layer (paper §4.1, Figure 3).
//!
//! A batch of disconnected graphs (all queries, or all data molecules) is
//! stored as one CSR over the union graph, plus a `graph_offsets` vector of
//! length `num_graphs + 1` mapping each graph to its contiguous node-id
//! range. Node ids are global within the batch; `graph_of` recovers the
//! owning graph via binary search, exactly as described in the paper.

use crate::csr::Csr;
use crate::graph::{EdgeLabel, Label, LabeledGraph, NodeId};
use crate::predicate::{NodeAttrs, NodePredicate};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Batched CSR with graph offsets.
///
/// ```
/// use sigmo_graph::{CsrGo, LabeledGraph};
/// let a = LabeledGraph::from_edges(&[0, 1], &[(0, 1)]).unwrap();
/// let b = LabeledGraph::from_edges(&[2, 2, 2], &[(0, 1), (1, 2)]).unwrap();
/// let batch = CsrGo::from_graphs(&[a, b]);
/// assert_eq!(batch.num_graphs(), 2);
/// assert_eq!(batch.graph_offsets(), &[0, 2, 5]);
/// assert_eq!(batch.graph_of(3), 1); // global node 3 lives in graph 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGo {
    csr: Csr,
    graph_offsets: Vec<u32>,
    /// Nonzero formal charges across the batch, sparse and sorted by
    /// global node id (offsets applied). Empty for uncharged batches.
    #[serde(default)]
    charges: Vec<(NodeId, i8)>,
    /// Per-node query predicates across the batch, sparse and sorted by
    /// global node id. Only query batches compiled from SMARTS carry
    /// these.
    #[serde(default)]
    preds: Vec<(NodeId, NodePredicate)>,
}

impl CsrGo {
    /// Builds the batched representation by concatenating `graphs`,
    /// offsetting node ids so each graph occupies a contiguous id range.
    pub fn from_graphs(graphs: &[LabeledGraph]) -> Self {
        let mut union = LabeledGraph::new();
        let mut graph_offsets = Vec::with_capacity(graphs.len() + 1);
        let mut charges = Vec::new();
        let mut preds = Vec::new();
        graph_offsets.push(0u32);
        let mut base: u32 = 0;
        for g in graphs {
            for v in 0..g.num_nodes() as NodeId {
                union.add_node(g.label(v));
            }
            for (a, b, l) in g.edges() {
                union
                    .add_edge(base + a, base + b, l)
                    .expect("offset edges cannot collide across graphs");
            }
            for &(v, c) in g.charges() {
                charges.push((base + v, c));
            }
            for (v, p) in g.predicates() {
                preds.push((base + v, p.clone()));
            }
            base += g.num_nodes() as u32;
            graph_offsets.push(base);
        }
        Self {
            csr: Csr::from_graph(&union),
            graph_offsets,
            charges,
            preds,
        }
    }

    /// Number of graphs in the batch.
    pub fn num_graphs(&self) -> usize {
        self.graph_offsets.len() - 1
    }

    /// Total nodes across the batch.
    pub fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    /// Total undirected edges across the batch.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Global node-id range of graph `g`.
    #[inline]
    pub fn node_range(&self, g: usize) -> Range<NodeId> {
        self.graph_offsets[g]..self.graph_offsets[g + 1]
    }

    /// Number of nodes in graph `g`.
    #[inline]
    pub fn graph_len(&self, g: usize) -> usize {
        (self.graph_offsets[g + 1] - self.graph_offsets[g]) as usize
    }

    /// Recovers the graph owning global node `v` by binary search over the
    /// graph-offsets array (paper §4.1).
    #[inline]
    pub fn graph_of(&self, v: NodeId) -> usize {
        // partition_point returns the count of offsets <= v, so subtracting
        // one lands on the owning graph.
        self.graph_offsets.partition_point(|&off| off <= v) - 1
    }

    /// Label of global node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.csr.label(v)
    }

    /// All labels in global node order.
    pub fn labels(&self) -> &[Label] {
        self.csr.labels()
    }

    /// Neighbors of global node `v` (all within the same graph by
    /// construction).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.csr.neighbors(v)
    }

    /// Edge labels parallel to [`CsrGo::neighbors`].
    #[inline]
    pub fn neighbor_edge_labels(&self, v: NodeId) -> &[EdgeLabel] {
        self.csr.neighbor_edge_labels(v)
    }

    /// Degree of global node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.csr.degree(v)
    }

    /// Edge lookup between two global node ids.
    #[inline]
    pub fn edge_label(&self, a: NodeId, b: NodeId) -> Option<EdgeLabel> {
        self.csr.edge_label(a, b)
    }

    /// Edge existence between two global node ids.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.csr.has_edge(a, b)
    }

    /// Formal charge of global node `v` (0 unless the source graph set
    /// one).
    pub fn charge(&self, v: NodeId) -> i8 {
        self.charges
            .binary_search_by_key(&v, |&(n, _)| n)
            .map(|i| self.charges[i].1)
            .unwrap_or(0)
    }

    /// The sparse nonzero-charge table, sorted by global node id.
    pub fn charges(&self) -> &[(NodeId, i8)] {
        &self.charges
    }

    /// The predicate attached to global node `v`, if any.
    pub fn predicate(&self, v: NodeId) -> Option<&NodePredicate> {
        self.preds
            .binary_search_by_key(&v, |(n, _)| *n)
            .ok()
            .map(|i| &self.preds[i].1)
    }

    /// The sparse predicate table, sorted by global node id.
    pub fn predicates(&self) -> &[(NodeId, NodePredicate)] {
        &self.preds
    }

    /// True when any node in the batch carries a predicate.
    pub fn has_predicates(&self) -> bool {
        !self.preds.is_empty()
    }

    /// Per-node attributes over the whole batch (graphs are disconnected,
    /// so per-graph ring perception composes trivially). Computed on
    /// demand — only predicate-bearing runs pay for it.
    pub fn node_attrs(&self) -> NodeAttrs {
        let n = self.num_nodes();
        let charges: Vec<i8> = {
            let mut dense = vec![0i8; n];
            for &(v, c) in &self.charges {
                dense[v as usize] = c;
            }
            dense
        };
        let adj: Vec<Vec<NodeId>> = (0..n as NodeId)
            .map(|v| self.neighbors(v).to_vec())
            .collect();
        NodeAttrs::build(self.labels(), &charges, &adj)
    }

    /// The graph-offsets array (length `num_graphs + 1`).
    pub fn graph_offsets(&self) -> &[u32] {
        &self.graph_offsets
    }

    /// Underlying CSR over the union graph.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Extracts graph `g` back out as a standalone [`LabeledGraph`] with
    /// local node ids (round-trip support, used by tests and baselines).
    pub fn extract_graph(&self, g: usize) -> LabeledGraph {
        let range = self.node_range(g);
        let base = range.start;
        let mut out = LabeledGraph::new();
        for v in range.clone() {
            out.add_node(self.label(v));
        }
        for v in range {
            let labels = self.neighbor_edge_labels(v);
            for (i, &u) in self.neighbors(v).iter().enumerate() {
                if v < u {
                    out.add_edge(v - base, u - base, labels[i])
                        .expect("extracted edge valid");
                }
            }
        }
        for &(v, c) in &self.charges {
            if v >= base && v < self.graph_offsets[g + 1] {
                out.set_charge(v - base, c);
            }
        }
        for (v, p) in &self.preds {
            if *v >= base && *v < self.graph_offsets[g + 1] {
                out.set_predicate(v - base, p.clone());
            }
        }
        out
    }

    /// Heap bytes consumed (CSR arrays + graph offsets), for §5.1.3-style
    /// memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.csr.memory_bytes() + self.graph_offsets.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure3_batch() -> Vec<LabeledGraph> {
        // Figure 3: G0 = 5 nodes (edges as in csr.rs test), G1 = 4 nodes
        // 5-6, 6-7, 6-8 (locally 0-1, 1-2, 1-3).
        let g0 =
            LabeledGraph::from_edges(&[0; 5], &[(0, 1), (0, 4), (1, 2), (1, 3), (2, 3), (3, 4)])
                .unwrap();
        let g1 = LabeledGraph::from_edges(&[1; 4], &[(0, 1), (1, 2), (1, 3)]).unwrap();
        vec![g0, g1]
    }

    #[test]
    fn graph_offsets_match_figure3() {
        let b = CsrGo::from_graphs(&figure3_batch());
        assert_eq!(b.graph_offsets(), &[0, 5, 9]);
        assert_eq!(b.num_graphs(), 2);
        assert_eq!(b.num_nodes(), 9);
    }

    #[test]
    fn graph_of_binary_search_agrees_with_linear_scan() {
        let b = CsrGo::from_graphs(&figure3_batch());
        for v in 0..b.num_nodes() as NodeId {
            let linear = (0..b.num_graphs())
                .find(|&g| b.node_range(g).contains(&v))
                .unwrap();
            assert_eq!(b.graph_of(v), linear, "node {v}");
        }
    }

    #[test]
    fn neighbors_stay_within_owning_graph() {
        let b = CsrGo::from_graphs(&figure3_batch());
        for v in 0..b.num_nodes() as NodeId {
            let g = b.graph_of(v);
            for &u in b.neighbors(v) {
                assert_eq!(b.graph_of(u), g);
            }
        }
    }

    #[test]
    fn extract_graph_round_trips() {
        let graphs = figure3_batch();
        let b = CsrGo::from_graphs(&graphs);
        for (i, g) in graphs.iter().enumerate() {
            let back = b.extract_graph(i);
            assert_eq!(back.num_nodes(), g.num_nodes());
            assert_eq!(back.num_edges(), g.num_edges());
            assert_eq!(back.labels(), g.labels());
            for (a, bb, l) in g.edges() {
                assert_eq!(back.edge_label(a, bb), Some(l));
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_graphs() {
        let b = CsrGo::from_graphs(&[]);
        assert_eq!(b.num_graphs(), 0);
        assert_eq!(b.num_nodes(), 0);

        let b = CsrGo::from_graphs(&[LabeledGraph::new(), LabeledGraph::with_uniform_labels(2, 3)]);
        assert_eq!(b.num_graphs(), 2);
        assert_eq!(b.graph_len(0), 0);
        assert_eq!(b.graph_len(1), 2);
        assert_eq!(b.graph_of(0), 1);
    }

    #[test]
    fn charges_and_predicates_round_trip_through_batch() {
        let mut g0 = LabeledGraph::from_edges(&[1, 2], &[(0, 1)]).unwrap();
        g0.set_charge(1, -1);
        let mut g1 = LabeledGraph::from_edges(&[3, 1, 1], &[(0, 1), (1, 2)]).unwrap();
        g1.set_charge(0, 2);
        g1.set_predicate(
            2,
            NodePredicate {
                degree: Some(1),
                ..Default::default()
            },
        );
        let b = CsrGo::from_graphs(&[g0.clone(), g1.clone()]);
        // Global views: offsets applied.
        assert_eq!(b.charge(1), -1);
        assert_eq!(b.charge(2), 2);
        assert_eq!(b.charge(0), 0);
        assert!(b.has_predicates());
        assert_eq!(b.predicate(4).unwrap().degree, Some(1));
        assert!(b.predicate(3).is_none());
        // Round trip back to standalone graphs.
        assert_eq!(b.extract_graph(0).charges(), g0.charges());
        assert_eq!(b.extract_graph(1).charges(), g1.charges());
        assert_eq!(b.extract_graph(1).predicates(), g1.predicates());
    }

    #[test]
    fn batch_node_attrs_compose_per_graph() {
        // g0 = triangle, g1 = path; ring perception must not leak across
        // the graph boundary.
        let g0 = LabeledGraph::from_edges(&[1, 1, 1], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let g1 = LabeledGraph::from_edges(&[0, 1], &[(0, 1)]).unwrap();
        let b = CsrGo::from_graphs(&[g0, g1]);
        let attrs = b.node_attrs();
        assert_eq!(attrs.min_ring, vec![3, 3, 3, 0, 0]);
        assert_eq!(attrs.h_count[4], 1);
        assert_eq!(attrs.degree, vec![2, 2, 2, 1, 1]);
    }

    #[test]
    fn labels_concatenate_in_graph_order() {
        let g0 = LabeledGraph::with_uniform_labels(2, 7);
        let g1 = LabeledGraph::with_uniform_labels(3, 9);
        let b = CsrGo::from_graphs(&[g0, g1]);
        assert_eq!(b.labels(), &[7, 7, 9, 9, 9]);
    }
}
