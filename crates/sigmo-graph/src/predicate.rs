//! Per-node query predicates and the data-node attributes they test.
//!
//! SMARTS-style queries constrain more than the element label: atom lists
//! `[C,N]`, negations `[!C]`, degree `D<n>`, ring membership `R` / `r<n>`,
//! total-hydrogen `H<n>`, and formal-charge tests. A [`NodePredicate`]
//! records the conjunction of such constraints for one query node; the
//! query compiler (`sigmo-mol`'s SMARTS front-end) attaches them to
//! [`crate::LabeledGraph`] nodes, and `sigmo-core` evaluates them during
//! candidate-bitmap initialization via a dedicated filter pass.
//!
//! Evaluation is centralized in [`NodePredicate::matches`] against a
//! [`NodeAttrs`] table so that the word-parallel kernel, the per-bit naive
//! oracle, and the reference validity predicate
//! ([`crate::LabeledGraph::is_valid_embedding`]) all agree bit for bit —
//! the differential tests depend on there being exactly one definition.

use crate::graph::{Label, NodeId};
use serde::{Deserialize, Serialize};

/// The node label that counts as "hydrogen" for total-H predicates. The
/// molecular front-end assigns element codes with hydrogen first; data
/// graphs carry explicit hydrogens, so `H<n>` is a neighbor-label count.
pub const H_LABEL: Label = 0;

/// A conjunction of per-node constraints beyond the plain label match.
/// Every field is optional; [`NodePredicate::is_trivial`] predicates with
/// no set field are dropped at attach time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodePredicate {
    /// Allowed-label bitmask (bit `l` set ⇒ label `l` allowed), for atom
    /// lists and negations. Labels ≥ 64 never match a mask. `None` means
    /// the plain node label (possibly wildcard) already decides.
    pub label_any: Option<u64>,
    /// Exact degree (explicit-hydrogen neighbors included).
    pub degree: Option<u8>,
    /// Ring membership: `Some(true)` requires the node to lie on a cycle,
    /// `Some(false)` forbids it.
    pub ring: Option<bool>,
    /// Smallest ring through the node must have exactly this size.
    pub ring_size: Option<u8>,
    /// Exact count of neighbors labeled [`H_LABEL`].
    pub h_count: Option<u8>,
    /// Exact formal charge.
    pub charge: Option<i8>,
}

impl NodePredicate {
    /// True when no constraint is set — such predicates are never stored.
    pub fn is_trivial(&self) -> bool {
        self.label_any.is_none()
            && self.degree.is_none()
            && self.ring.is_none()
            && self.ring_size.is_none()
            && self.h_count.is_none()
            && self.charge.is_none()
    }

    /// Evaluates the conjunction against data node `v`'s attributes. This
    /// is the single definition every evaluation path shares.
    pub fn matches(&self, attrs: &NodeAttrs, v: NodeId) -> bool {
        let i = v as usize;
        if let Some(mask) = self.label_any {
            let l = attrs.labels[i];
            if (l as usize) >= 64 || mask & (1u64 << l) == 0 {
                return false;
            }
        }
        if let Some(d) = self.degree {
            if attrs.degree[i] != d as u32 {
                return false;
            }
        }
        if let Some(h) = self.h_count {
            if attrs.h_count[i] != h as u32 {
                return false;
            }
        }
        if let Some(c) = self.charge {
            if attrs.charge[i] != c {
                return false;
            }
        }
        if let Some(in_ring) = self.ring {
            if (attrs.min_ring[i] > 0) != in_ring {
                return false;
            }
        }
        if let Some(size) = self.ring_size {
            if attrs.min_ring[i] != size as u32 {
                return false;
            }
        }
        true
    }
}

/// Per-node attributes of a data graph (or batch), precomputed once per
/// graph so predicate evaluation is a table lookup. `min_ring[v]` is the
/// length of the shortest cycle through `v` (0 when `v` is acyclic),
/// computed exactly: for each incident edge, the edge is removed and the
/// shortest alternative path between its endpoints closes the smallest
/// cycle containing that edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAttrs {
    /// Node labels, id order.
    pub labels: Vec<Label>,
    /// Degrees.
    pub degree: Vec<u32>,
    /// Neighbors labeled [`H_LABEL`].
    pub h_count: Vec<u32>,
    /// Formal charges (0 unless the graph carries one).
    pub charge: Vec<i8>,
    /// Smallest ring through each node; 0 = not on any cycle.
    pub min_ring: Vec<u32>,
}

impl NodeAttrs {
    /// Builds the table from label/charge slices and an adjacency list
    /// (`adj[v]` = neighbor ids of `v`). The adjacency must be symmetric.
    pub fn build(labels: &[Label], charges: &[i8], adj: &[Vec<NodeId>]) -> Self {
        let n = labels.len();
        debug_assert_eq!(charges.len(), n);
        debug_assert_eq!(adj.len(), n);
        let degree: Vec<u32> = adj.iter().map(|nb| nb.len() as u32).collect();
        let h_count: Vec<u32> = adj
            .iter()
            .map(|nb| {
                nb.iter()
                    .filter(|&&u| labels[u as usize] == H_LABEL)
                    .count() as u32
            })
            .collect();
        let min_ring = min_ring_sizes(n, adj);
        Self {
            labels: labels.to_vec(),
            degree,
            h_count,
            charge: charges.to_vec(),
            min_ring,
        }
    }
}

/// Shortest cycle through each node: min over incident edges `(v, u)` of
/// `1 +` the shortest `v → u` path avoiding that edge (BFS). Exact on the
/// simple graphs this crate builds; `O(Σ deg · (n + m))`, which is small
/// for molecular graphs.
fn min_ring_sizes(n: usize, adj: &[Vec<NodeId>]) -> Vec<u32> {
    let mut out = vec![0u32; n];
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..n as NodeId {
        let mut best = u32::MAX;
        for &u in &adj[v as usize] {
            // BFS v → u without the direct edge.
            dist.fill(u32::MAX);
            dist[v as usize] = 0;
            queue.clear();
            queue.push_back(v);
            'bfs: while let Some(x) = queue.pop_front() {
                for &y in &adj[x as usize] {
                    if x == v && y == u {
                        continue; // the removed edge
                    }
                    if dist[y as usize] == u32::MAX {
                        dist[y as usize] = dist[x as usize] + 1;
                        if y == u {
                            break 'bfs;
                        }
                        queue.push_back(y);
                    }
                }
            }
            if dist[u as usize] != u32::MAX {
                best = best.min(dist[u as usize] + 1);
            }
        }
        if best != u32::MAX {
            out[v as usize] = best;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LabeledGraph;

    fn attrs_of(g: &LabeledGraph) -> NodeAttrs {
        g.node_attrs()
    }

    #[test]
    fn trivial_predicate_matches_everything() {
        let g = LabeledGraph::from_edges(&[1, 0, 1], &[(0, 1), (1, 2)]).unwrap();
        let attrs = attrs_of(&g);
        let p = NodePredicate::default();
        assert!(p.is_trivial());
        for v in 0..3 {
            assert!(p.matches(&attrs, v));
        }
    }

    #[test]
    fn label_mask_selects_listed_labels() {
        let g = LabeledGraph::from_edges(&[1, 2, 3], &[(0, 1), (1, 2)]).unwrap();
        let attrs = attrs_of(&g);
        let p = NodePredicate {
            label_any: Some((1 << 1) | (1 << 3)),
            ..Default::default()
        };
        assert!(p.matches(&attrs, 0));
        assert!(!p.matches(&attrs, 1));
        assert!(p.matches(&attrs, 2));
    }

    #[test]
    fn degree_and_h_count() {
        // H-C-H chain: carbon has degree 2 and two hydrogens.
        let g = LabeledGraph::from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let attrs = attrs_of(&g);
        let deg2 = NodePredicate {
            degree: Some(2),
            ..Default::default()
        };
        assert!(!deg2.matches(&attrs, 0));
        assert!(deg2.matches(&attrs, 1));
        let h2 = NodePredicate {
            h_count: Some(2),
            ..Default::default()
        };
        assert!(h2.matches(&attrs, 1));
        assert!(!h2.matches(&attrs, 0));
    }

    #[test]
    fn ring_membership_and_smallest_ring() {
        // Triangle 0-1-2 with a pendant node 3 on node 2.
        let g = LabeledGraph::from_edges(&[1, 1, 1, 1], &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let attrs = attrs_of(&g);
        assert_eq!(attrs.min_ring, vec![3, 3, 3, 0]);
        let in_ring = NodePredicate {
            ring: Some(true),
            ..Default::default()
        };
        assert!(in_ring.matches(&attrs, 0));
        assert!(!in_ring.matches(&attrs, 3));
        let r3 = NodePredicate {
            ring_size: Some(3),
            ..Default::default()
        };
        assert!(r3.matches(&attrs, 1));
        assert!(!r3.matches(&attrs, 3));
    }

    #[test]
    fn fused_rings_report_smallest() {
        // A 4-cycle sharing the edge (0, 1) with a triangle: nodes 0 and 1
        // lie on both, their smallest ring is the triangle.
        let mut g = LabeledGraph::with_uniform_labels(5, 1);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 1)] {
            g.add_edge(a, b, 0).unwrap();
        }
        let attrs = attrs_of(&g);
        assert_eq!(attrs.min_ring[0], 3);
        assert_eq!(attrs.min_ring[1], 3);
        assert_eq!(attrs.min_ring[2], 4);
        assert_eq!(attrs.min_ring[4], 3);
    }

    #[test]
    fn charge_predicate_reads_graph_charges() {
        let mut g = LabeledGraph::from_edges(&[2, 1], &[(0, 1)]).unwrap();
        g.set_charge(0, 1);
        let attrs = attrs_of(&g);
        let plus = NodePredicate {
            charge: Some(1),
            ..Default::default()
        };
        assert!(plus.matches(&attrs, 0));
        assert!(!plus.matches(&attrs, 1));
        let neutral = NodePredicate {
            charge: Some(0),
            ..Default::default()
        };
        assert!(neutral.matches(&attrs, 1));
    }

    #[test]
    fn labels_at_or_above_64_never_match_a_mask() {
        let g = LabeledGraph::from_edges(&[200, 1], &[(0, 1)]).unwrap();
        let attrs = attrs_of(&g);
        let p = NodePredicate {
            label_any: Some(u64::MAX),
            ..Default::default()
        };
        assert!(!p.matches(&attrs, 0));
        assert!(p.matches(&attrs, 1));
    }
}
