//! Labeled-graph substrate for batched subgraph isomorphism.
//!
//! This crate provides the graph data structures the SIGMo pipeline is built
//! on:
//!
//! * [`LabeledGraph`] — a simple, undirected, node- and edge-labeled graph
//!   with an adjacency-list builder API;
//! * [`Csr`] — the classic Compressed Sparse Row encoding of a single graph;
//! * [`CsrGo`] — CSR extended with a *graph offsets* layer so that many
//!   disconnected graphs (a whole molecule batch) live in one contiguous
//!   structure without losing per-graph boundaries (paper §4.1, Figure 3);
//! * BFS utilities with reusable frontiers and ring-at-distance-`k`
//!   iteration, which back the incremental signature refinement of the
//!   filter phase (paper §4.4).
//!
//! Node labels are small integers (`Label`); in the molecular domain they
//! identify chemical elements. Edge labels (`EdgeLabel`) encode bond kinds.

pub mod bfs;
pub mod csr;
pub mod csrgo;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod predicate;

pub use bfs::{Bfs, RingIter};
pub use csr::Csr;
pub use csrgo::CsrGo;
pub use generators::{
    random_callgraph, random_connected_subgraph, random_sparse_graph, random_tree, XorShift,
};
pub use graph::{
    EdgeLabel, GraphError, Label, LabeledGraph, NodeId, WILDCARD_EDGE, WILDCARD_LABEL,
};
pub use metrics::{connected_components, diameter, eccentricity, is_connected};
pub use predicate::{NodeAttrs, NodePredicate, H_LABEL};
