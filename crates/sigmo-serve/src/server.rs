//! The batched request server: admission control, micro-batching, and
//! per-request result scatter.
//!
//! A [`Server`] accepts [`MatchRequest`]s (a query set, a molecule set,
//! and a [`MatchMode`]) into a bounded pending queue. Each [`Server::step`]
//! drains one micro-batch window, groups compatible requests (same plan,
//! same mode), executes each group's *unique, uncached* molecules in one
//! [`StreamRunner`] pass over the shared [`sigmo_core::QueryPlan`], and
//! scatters the per-pair attribution back into per-request reports.
//!
//! Batching and caching are result-invisible: a molecule's outcome is a
//! pure function of (plan, molecule, mode, step budget), because chunk
//! truncation is bisected down to solo runs and step budgets are local to
//! each molecule's work-group (DESIGN.md §9). The soak tests assert this
//! against an unbatched oracle replay, bit for bit.

use crate::cache::{MolId, MolOutcome, MolStore, PlanCache, PlanId, ResultCache};
use sigmo_core::engine::EngineConfig;
use sigmo_core::{Completion, MatchMode, RunBudget, StreamRunner, TruncationReason};
use sigmo_device::Queue;
use sigmo_graph::LabeledGraph;
use std::collections::HashMap;
use std::sync::Arc;

/// One (query set, molecule set, mode) matching request.
#[derive(Debug, Clone)]
pub struct MatchRequest {
    /// Query graphs; per-request results attribute matches to these by
    /// index, so order is significant.
    pub queries: Vec<LabeledGraph>,
    /// Molecules to match against; results are per request-local index.
    pub molecules: Vec<LabeledGraph>,
    /// Find All (count embeddings) or Find First (matched pairs).
    pub mode: MatchMode,
}

/// Why admission refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The pending queue is at capacity — back off and retry.
    QueueFull,
    /// Empty query or molecule set.
    Malformed,
    /// Molecule count above [`ServeConfig::max_request_molecules`], or a
    /// molecule too large to canonicalize.
    Oversized,
}

/// Per-request outcome returned by [`Server::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestReport {
    /// The id [`Server::submit`] returned.
    pub request_id: u64,
    /// Total embeddings (Find All) or matched pairs (Find First).
    pub total_matches: u64,
    /// `(request-local molecule index, query index, matches)` for every
    /// pair with ≥ 1 match; counts sum to `total_matches`.
    pub pair_counts: Vec<(usize, usize, u64)>,
    /// Request-local indices of molecules whose counts are step-budget
    /// truncated lower bounds.
    pub truncated_molecules: Vec<usize>,
    /// `Complete`, or `Truncated(StepBudget)` when any molecule was.
    pub completion: Completion,
    /// Molecules answered from the result cache.
    pub cached_molecules: usize,
    /// Molecules this request contributed to the executed batch.
    pub executed_molecules: usize,
}

/// Aggregate cache/queue counters, exposed by [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Canonical-molecule store hits (an already-interned class).
    pub mol_hits: u64,
    /// Canonical-molecule store misses (a new class stored).
    pub mol_misses: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (a plan was built).
    pub plan_misses: u64,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Result-cache misses.
    pub result_misses: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Molecules executed through the engine (post-dedup occurrences).
    pub executed_molecules: u64,
    /// Micro-batch groups executed.
    pub batches: u64,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Base engine configuration; `mode` is overridden per request.
    pub engine: EngineConfig,
    /// Per-chunk device-memory budget handed to the [`StreamRunner`].
    pub memory_budget: u64,
    /// Per-chunk governor budget. Only `max_join_steps` yields cacheable
    /// truncation; deadline / embedding-cap truncations are never cached.
    pub budget: RunBudget,
    /// Pending-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Requests drained per [`Server::step`] (the micro-batch window).
    pub max_batch_requests: usize,
    /// Admission cap on molecules per request.
    pub max_request_molecules: usize,
    /// Result-cache capacity in outcomes.
    pub result_cache_capacity: usize,
    /// Master switch for deduplication: `false` disables the result cache
    /// and plan reuse (the no-cache ablation) while keeping batching.
    pub caching: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            memory_budget: 64 << 20,
            budget: RunBudget::none(),
            queue_capacity: 64,
            max_batch_requests: 16,
            max_request_molecules: 4096,
            result_cache_capacity: 1 << 16,
            caching: true,
        }
    }
}

/// An admitted request, canonicalized at the door.
struct Pending {
    id: u64,
    mode: MatchMode,
    plan: PlanId,
    mols: Vec<MolId>,
}

/// Outcome of one [`Server::step`]: the drained window's reports plus the
/// deterministic work accounting the simulator charges time for.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// One report per drained request, in admission order.
    pub reports: Vec<RequestReport>,
    /// Molecules actually executed this step (after dedup).
    pub executed_molecules: usize,
    /// Micro-batch groups executed this step.
    pub batches: usize,
}

/// The batched request server. Single-threaded by design: determinism
/// comes from the sequential admission/step loop, parallelism from the
/// rayon-backed engine inside each batch.
pub struct Server {
    config: ServeConfig,
    queue: Queue,
    mols: MolStore,
    plans: PlanCache,
    results: ResultCache,
    pending: Vec<Pending>,
    next_id: u64,
    admitted: u64,
    rejected: u64,
    executed: u64,
    batches: u64,
}

impl Server {
    /// Creates a server executing on `queue`.
    pub fn new(config: ServeConfig, queue: Queue) -> Self {
        let results = ResultCache::new(if config.caching {
            config.result_cache_capacity
        } else {
            0
        });
        Self {
            config,
            queue,
            mols: MolStore::new(),
            plans: PlanCache::new(),
            results,
            pending: Vec::new(),
            next_id: 0,
            admitted: 0,
            rejected: 0,
            executed: 0,
            batches: 0,
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Requests admitted but not yet stepped.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Admission control: canonicalizes and enqueues the request, or
    /// rejects it. Rejection is the backpressure signal — the queue bound
    /// keeps per-step latency within the governor budget's reach.
    pub fn submit(&mut self, request: &MatchRequest) -> Result<u64, RejectReason> {
        if self.pending.len() >= self.config.queue_capacity {
            self.rejected += 1;
            return Err(RejectReason::QueueFull);
        }
        if request.queries.is_empty() || request.molecules.is_empty() {
            self.rejected += 1;
            return Err(RejectReason::Malformed);
        }
        if request.molecules.len() > self.config.max_request_molecules
            || request.molecules.iter().any(|m| m.num_nodes() > 255)
            || request.queries.iter().any(|q| q.num_nodes() > 255)
        {
            self.rejected += 1;
            return Err(RejectReason::Oversized);
        }
        let plan = self.plans.intern(&request.queries, &self.config.engine);
        let mols = request
            .molecules
            .iter()
            .map(|m| self.mols.intern(m))
            .collect();
        let id = self.next_id;
        self.next_id += 1;
        self.admitted += 1;
        self.pending.push(Pending {
            id,
            mode: request.mode,
            plan,
            mols,
        });
        Ok(id)
    }

    /// Drains one micro-batch window and executes it: groups the drained
    /// requests by `(plan, mode)`, runs each group's unique uncached
    /// molecules in one streamed pass, caches the sound outcomes, and
    /// scatters per-request reports.
    pub fn step(&mut self) -> StepOutcome {
        let window = self.config.max_batch_requests.min(self.pending.len());
        let drained: Vec<Pending> = self.pending.drain(..window).collect();
        if drained.is_empty() {
            return StepOutcome::default();
        }
        // Group by (plan, mode), preserving first-seen order for
        // determinism (never iterate a HashMap).
        let mut group_index: HashMap<(PlanId, MatchMode), usize> = HashMap::new();
        let mut groups: Vec<((PlanId, MatchMode), Vec<&Pending>)> = Vec::new();
        for p in &drained {
            let key = (p.plan, p.mode);
            match group_index.get(&key) {
                Some(&g) => groups[g].1.push(p),
                None => {
                    group_index.insert(key, groups.len());
                    groups.push((key, vec![p]));
                }
            }
        }
        let mut outcome = StepOutcome::default();
        let mut reports: Vec<RequestReport> = Vec::with_capacity(drained.len());
        for ((plan_id, mode), members) in &groups {
            let (executed, group_reports) = self.run_group(*plan_id, *mode, members);
            outcome.executed_molecules += executed;
            outcome.batches += 1;
            reports.extend(group_reports);
        }
        reports.sort_by_key(|r| r.request_id);
        self.executed += outcome.executed_molecules as u64;
        self.batches += outcome.batches as u64;
        outcome.reports = reports;
        outcome
    }

    /// Executes one `(plan, mode)` group and scatters its reports.
    fn run_group(
        &mut self,
        plan_id: PlanId,
        mode: MatchMode,
        members: &[&Pending],
    ) -> (usize, Vec<RequestReport>) {
        // Gather the molecules to execute: with caching, each uncached
        // class once; without, every occurrence (the ablation re-derives
        // everything, including repeats inside one window).
        let mut exec: Vec<MolId> = Vec::new();
        let mut cached: HashMap<MolId, Arc<MolOutcome>> = HashMap::new();
        if self.config.caching {
            let mut seen: HashMap<MolId, ()> = HashMap::new();
            for p in members {
                for &m in &p.mols {
                    if seen.contains_key(&m) {
                        continue;
                    }
                    seen.insert(m, ());
                    match self.results.get(plan_id, m, mode) {
                        Some(out) => {
                            cached.insert(m, out);
                        }
                        None => exec.push(m),
                    }
                }
            }
        } else {
            for p in members {
                exec.extend(p.mols.iter().copied());
            }
        }

        let (fresh, cacheable) = self.execute(plan_id, mode, &exec);
        if self.config.caching {
            // Complete outcomes are exact; step-budget partials are a
            // deterministic property of the molecule's own work-group.
            // Deadline / embedding-cap / cancellation truncations are
            // wall-clock- or batch-dependent and never reach the cache.
            for ((&m, out), &ok) in exec.iter().zip(&fresh).zip(&cacheable) {
                if ok {
                    self.results.insert(plan_id, m, mode, Arc::clone(out));
                }
            }
        }

        // Scatter: walk each request's molecules in order, pulling from
        // the cache map or the freshly executed outcomes.
        let fresh_by_id: HashMap<MolId, &Arc<MolOutcome>> = if self.config.caching {
            exec.iter().copied().zip(fresh.iter()).collect()
        } else {
            HashMap::new()
        };
        let mut reports = Vec::with_capacity(members.len());
        let mut occurrence = 0usize;
        for p in members {
            let mut report = RequestReport {
                request_id: p.id,
                total_matches: 0,
                pair_counts: Vec::new(),
                truncated_molecules: Vec::new(),
                completion: Completion::Complete,
                cached_molecules: 0,
                executed_molecules: 0,
            };
            for (local, &m) in p.mols.iter().enumerate() {
                let out: &MolOutcome = if self.config.caching {
                    match cached.get(&m) {
                        Some(out) => {
                            report.cached_molecules += 1;
                            out
                        }
                        None => {
                            report.executed_molecules += 1;
                            fresh_by_id[&m]
                        }
                    }
                } else {
                    report.executed_molecules += 1;
                    let out = &fresh[occurrence];
                    occurrence += 1;
                    out
                };
                for &(q, n) in &out.pairs {
                    report.pair_counts.push((local, q, n));
                    report.total_matches += n;
                }
                if out.truncated {
                    report.truncated_molecules.push(local);
                    report.completion = report
                        .completion
                        .merge(Completion::Truncated(TruncationReason::StepBudget));
                }
            }
            reports.push(report);
        }
        (exec.len(), reports)
    }

    /// Runs `exec` through the streamed engine under the shared plan,
    /// returning one outcome per executed molecule (in `exec` order) plus
    /// a parallel cacheability mask.
    fn execute(
        &mut self,
        plan_id: PlanId,
        mode: MatchMode,
        exec: &[MolId],
    ) -> (Vec<Arc<MolOutcome>>, Vec<bool>) {
        if exec.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let mut cfg = self.config.engine.clone();
        cfg.mode = mode;
        let runner = StreamRunner::new(cfg, self.config.memory_budget)
            .with_budget(self.config.budget.clone());
        let mols: Vec<LabeledGraph> = exec.iter().map(|&m| self.mols.graph(m).clone()).collect();
        let report = if self.config.caching {
            let plan = self.plans.plan(plan_id);
            runner.run_with_plan(&plan, mols, &self.queue)
        } else {
            // Ablation: rebuild the plan for every group execution.
            runner.run(self.plans.queries(plan_id), mols, &self.queue)
        };
        let mut outcomes: Vec<MolOutcome> = exec
            .iter()
            .map(|_| MolOutcome {
                pairs: Vec::new(),
                truncated: false,
            })
            .collect();
        for &(d, q, n) in &report.pair_counts {
            outcomes[d].pairs.push((q, n));
        }
        for &d in &report.truncated_graphs {
            outcomes[d].truncated = true;
        }
        // Quarantined molecules whose reason is not a local step trip
        // (deadline / embedding cap) are also truncated, and their
        // partials are wall-clock- or batch-dependent: report them but
        // never cache them. With the serving default (step budgets only),
        // this set is empty.
        let mut cacheable = vec![true; exec.len()];
        for quarantined in &report.quarantined {
            if quarantined.reason != TruncationReason::StepBudget {
                outcomes[quarantined.index].truncated = true;
                cacheable[quarantined.index] = false;
            }
        }
        (outcomes.into_iter().map(Arc::new).collect(), cacheable)
    }

    /// Aggregate cache and admission counters.
    pub fn stats(&self) -> ServeStats {
        let (mol_hits, mol_misses) = self.mols.counters();
        let (plan_hits, plan_misses) = self.plans.counters();
        let (result_hits, result_misses) = self.results.counters();
        ServeStats {
            mol_hits,
            mol_misses,
            plan_hits,
            plan_misses,
            result_hits,
            result_misses,
            admitted: self.admitted,
            rejected: self.rejected,
            executed_molecules: self.executed,
            batches: self.batches,
        }
    }
}
