//! The batched request server: admission control, micro-batching, and
//! per-request result scatter.
//!
//! A [`Server`] accepts [`MatchRequest`]s (a query set, a molecule set,
//! and a [`MatchMode`]) into a bounded pending queue. Each [`Server::step`]
//! drains one micro-batch window, groups compatible requests (same plan,
//! same mode), executes each group's *unique, uncached* molecules in one
//! [`StreamRunner`] pass over the shared [`sigmo_core::QueryPlan`], and
//! scatters the per-pair attribution back into per-request reports.
//!
//! Batching and caching are result-invisible: a molecule's outcome is a
//! pure function of (plan, molecule, mode, step budget), because chunk
//! truncation is bisected down to solo runs and step budgets are local to
//! each molecule's work-group (DESIGN.md §9). The soak tests assert this
//! against an unbatched oracle replay, bit for bit.

use crate::cache::{MolId, MolOutcome, MolStore, PlanCache, PlanId, ResultCache};
use crate::shard::{ShardConfig, ShardRouter, ShardStats};
use sigmo_core::engine::EngineConfig;
use sigmo_core::{Completion, MatchMode, RunBudget, StreamReport, StreamRunner, TruncationReason};
use sigmo_device::Queue;
use sigmo_graph::LabeledGraph;
use sigmo_index::{FrozenIndex, IndexConfig, ScreenQuery};
use std::collections::HashMap;
use std::sync::Arc;

/// One (query set, molecule set, mode) matching request.
#[derive(Debug, Clone)]
pub struct MatchRequest {
    /// Query graphs; per-request results attribute matches to these by
    /// index, so order is significant.
    pub queries: Vec<LabeledGraph>,
    /// Molecules to match against; results are per request-local index.
    pub molecules: Vec<LabeledGraph>,
    /// Find All (count embeddings) or Find First (matched pairs).
    pub mode: MatchMode,
}

/// Why admission refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The pending queue is at capacity — back off and retry.
    QueueFull,
    /// Empty query or molecule set.
    Malformed,
    /// Molecule count above [`ServeConfig::max_request_molecules`], or a
    /// molecule too large to canonicalize.
    Oversized,
}

/// Per-request outcome returned by [`Server::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestReport {
    /// The id [`Server::submit`] returned.
    pub request_id: u64,
    /// Total embeddings (Find All) or matched pairs (Find First).
    pub total_matches: u64,
    /// `(request-local molecule index, query index, matches)` for every
    /// pair with ≥ 1 match; counts sum to `total_matches`.
    pub pair_counts: Vec<(usize, usize, u64)>,
    /// Request-local indices of molecules whose counts are step-budget
    /// truncated lower bounds.
    pub truncated_molecules: Vec<usize>,
    /// `Complete`, or `Truncated(StepBudget)` when any molecule was.
    pub completion: Completion,
    /// Molecules answered from the result cache.
    pub cached_molecules: usize,
    /// Molecules this request contributed to the executed batch.
    pub executed_molecules: usize,
}

/// Result of a `.smi` corpus preload ([`Server::preload_corpus`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusLoad {
    /// Valid molecules loaded (pre-dedup occurrences).
    pub loaded: usize,
    /// Distinct isomorphism classes those molecules interned to.
    pub classes: usize,
    /// Malformed lines, in file order.
    pub quarantined: Vec<sigmo_mol::QuarantinedLine>,
}

/// Aggregate cache/queue counters, exposed by [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Canonical-molecule store hits (an already-interned class).
    pub mol_hits: u64,
    /// Canonical-molecule store misses (a new class stored).
    pub mol_misses: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (a plan was built).
    pub plan_misses: u64,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Result-cache misses.
    pub result_misses: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Molecules executed through the engine (post-dedup occurrences).
    pub executed_molecules: u64,
    /// Micro-batch groups executed.
    pub batches: u64,
    /// Molecules consulted against the screening index (the exec-stage
    /// occurrences of [`ServeStats::executed_molecules`] while an index
    /// is enabled).
    pub index_screened: u64,
    /// Molecules the index proved matchless — answered with a
    /// synthesized empty outcome instead of an engine run.
    pub index_pruned: u64,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Base engine configuration; `mode` is overridden per request.
    pub engine: EngineConfig,
    /// Per-chunk device-memory budget handed to the [`StreamRunner`].
    pub memory_budget: u64,
    /// Per-chunk governor budget. Only `max_join_steps` yields cacheable
    /// truncation; deadline / embedding-cap truncations are never cached.
    pub budget: RunBudget,
    /// Pending-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Requests drained per [`Server::step`] (the micro-batch window).
    pub max_batch_requests: usize,
    /// Admission cap on molecules per request.
    pub max_request_molecules: usize,
    /// Result-cache capacity in outcomes.
    pub result_cache_capacity: usize,
    /// Master switch for deduplication: `false` disables the result cache
    /// and plan reuse (the no-cache ablation) while keeping batching.
    pub caching: bool,
    /// Sharded serving tier: `Some` partitions the corpus across
    /// simulated ranks with replica retry, work-stealing, and graceful
    /// degradation (see [`crate::shard`]); `None` keeps the single-node
    /// path bit-for-bit unchanged.
    pub sharding: Option<ShardConfig>,
    /// Standing-corpus screening index: `Some` digests every interned
    /// molecule once at ingest and consults the index per plan-group,
    /// so provably matchless molecules skip the engine entirely. Sound
    /// screening keeps every outcome — truncation flags and virtual-
    /// clock accounting included — bit-identical to `None` (the
    /// index-off oracle); only wall-clock work shrinks.
    pub index: Option<IndexConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            memory_budget: 64 << 20,
            budget: RunBudget::none(),
            queue_capacity: 64,
            max_batch_requests: 16,
            max_request_molecules: 4096,
            result_cache_capacity: 1 << 16,
            caching: true,
            sharding: None,
            index: Some(IndexConfig::default()),
        }
    }
}

/// An admitted request, canonicalized at the door.
struct Pending {
    id: u64,
    mode: MatchMode,
    plan: PlanId,
    mols: Vec<MolId>,
}

/// Outcome of one [`Server::step`]: the drained window's reports plus the
/// deterministic work accounting the simulator charges time for.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// One report per drained request, in admission order.
    pub reports: Vec<RequestReport>,
    /// Per-request completion offsets in virtual ticks from the step's
    /// start, parallel to `reports`. Unsharded, every request completes
    /// when the whole step does (`offset == service_ticks`); sharded,
    /// each request finishes when its last shard-slice does, so requests
    /// untouched by a fault keep their clean latency.
    pub offsets: Vec<u64>,
    /// Molecules actually executed this step (after dedup).
    pub executed_molecules: usize,
    /// Micro-batch groups executed this step.
    pub batches: usize,
    /// Deterministic virtual-clock cost of the whole step. Unsharded:
    /// one tick per micro-batch group plus one per executed molecule
    /// (the PR 5 accounting, unchanged bit for bit). Sharded: the
    /// step's makespan across rank clocks — dispatches, backoff waits,
    /// straggler-stretched service, and degraded give-ups included.
    pub service_ticks: u64,
}

/// The batched request server. Single-threaded by design: determinism
/// comes from the sequential admission/step loop, parallelism from the
/// rayon-backed engine inside each batch.
pub struct Server {
    config: ServeConfig,
    queue: Queue,
    mols: MolStore,
    plans: PlanCache,
    results: ResultCache,
    /// Per-plan screening shadows, built lazily on first group run.
    screens: HashMap<PlanId, Arc<ScreenQuery>>,
    router: Option<ShardRouter>,
    /// Corpus partition version: part of every result-cache key, bumped
    /// by [`Server::repartition`] so stale merged results never serve.
    epoch: u64,
    pending: Vec<Pending>,
    next_id: u64,
    admitted: u64,
    rejected: u64,
    executed: u64,
    batches: u64,
    screened: u64,
    pruned: u64,
}

impl Server {
    /// Creates a server executing on `queue`.
    pub fn new(config: ServeConfig, queue: Queue) -> Self {
        let results = ResultCache::new(if config.caching {
            config.result_cache_capacity
        } else {
            0
        });
        let router = config.sharding.clone().map(ShardRouter::new);
        let mols = match &config.index {
            Some(ix) => MolStore::with_screen_index(*ix, &config.engine.schema),
            None => MolStore::new(),
        };
        Self {
            config,
            queue,
            mols,
            plans: PlanCache::new(),
            results,
            screens: HashMap::new(),
            router,
            epoch: 0,
            pending: Vec::new(),
            next_id: 0,
            admitted: 0,
            rejected: 0,
            executed: 0,
            batches: 0,
            screened: 0,
            pruned: 0,
        }
    }

    /// Bulk-loads a standing corpus from a frozen index file into this
    /// (empty) server: stored graphs are re-interned, and — when
    /// screening is enabled — the file's digests are adopted verbatim,
    /// skipping the per-molecule signature recompute. The corpus change
    /// is versioned forward via [`Server::repartition`]. Returns the
    /// number of live molecules loaded.
    pub fn preload_index(&mut self, frozen: &FrozenIndex) -> Result<usize, String> {
        let keep_screen = self.config.index.is_some();
        let live = self
            .mols
            .adopt_frozen(frozen, keep_screen, &self.config.engine.schema)?;
        self.repartition();
        Ok(live)
    }

    /// Bulk-loads a standing corpus from `.smi` text (one `SMILES [name]`
    /// record per line): every line parses in parallel, valid molecules
    /// are interned (canonical-deduplicated, digested when screening is
    /// on), and malformed lines are quarantined — reported back, never
    /// fatal. The corpus change is versioned forward via
    /// [`Server::repartition`].
    pub fn preload_corpus(&mut self, smi_text: &str) -> CorpusLoad {
        let ingest = sigmo_mol::ingest_smi(smi_text, false);
        let mut classes = std::collections::HashSet::new();
        for (_, mol) in &ingest.molecules {
            classes.insert(self.mols.intern(&mol.to_labeled_graph()));
        }
        self.repartition();
        CorpusLoad {
            loaded: ingest.molecules.len(),
            classes: classes.len(),
            quarantined: ingest.quarantined,
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Requests admitted but not yet stepped.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The current shard epoch (corpus partition version).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-shard dispatch/latency records, when sharded.
    pub fn shard_stats(&self) -> Option<&[ShardStats]> {
        self.router.as_ref().map(|r| r.stats())
    }

    /// Bumps the shard epoch: molecule→shard ownership is re-drawn from
    /// the new epoch's hash and every previously cached merged result —
    /// keyed to the old epoch — becomes unreachable. Call after any
    /// corpus change that moves molecules between shards.
    pub fn repartition(&mut self) {
        self.epoch += 1;
    }

    /// Removes a molecule from the corpus: its interning entries are
    /// retired (later submissions mint a fresh id) and the partition is
    /// versioned forward via [`Server::repartition`], so no cached result
    /// computed against the old corpus can be served. Returns whether the
    /// molecule was known.
    pub fn remove_molecule(&mut self, molecule: &LabeledGraph) -> bool {
        match self.mols.lookup(molecule) {
            Some(id) => {
                self.mols.retire(id);
                self.repartition();
                true
            }
            None => false,
        }
    }

    /// Admission control: canonicalizes and enqueues the request, or
    /// rejects it. Rejection is the backpressure signal — the queue bound
    /// keeps per-step latency within the governor budget's reach.
    pub fn submit(&mut self, request: &MatchRequest) -> Result<u64, RejectReason> {
        if self.pending.len() >= self.config.queue_capacity {
            self.rejected += 1;
            return Err(RejectReason::QueueFull);
        }
        if request.queries.is_empty() || request.molecules.is_empty() {
            self.rejected += 1;
            return Err(RejectReason::Malformed);
        }
        if request.molecules.len() > self.config.max_request_molecules
            || request.molecules.iter().any(|m| m.num_nodes() > 255)
            || request.queries.iter().any(|q| q.num_nodes() > 255)
        {
            self.rejected += 1;
            return Err(RejectReason::Oversized);
        }
        let plan = self.plans.intern(&request.queries, &self.config.engine);
        let mols = request
            .molecules
            .iter()
            .map(|m| self.mols.intern(m))
            .collect();
        let id = self.next_id;
        self.next_id += 1;
        self.admitted += 1;
        self.pending.push(Pending {
            id,
            mode: request.mode,
            plan,
            mols,
        });
        Ok(id)
    }

    /// Drains one micro-batch window and executes it: groups the drained
    /// requests by `(plan, mode)`, runs each group's unique uncached
    /// molecules in one streamed pass, caches the sound outcomes, and
    /// scatters per-request reports.
    pub fn step(&mut self) -> StepOutcome {
        let window = self.config.max_batch_requests.min(self.pending.len());
        let drained: Vec<Pending> = self.pending.drain(..window).collect();
        if drained.is_empty() {
            return StepOutcome::default();
        }
        // Group by (plan, mode), preserving first-seen order for
        // determinism (never iterate a HashMap).
        let mut group_index: HashMap<(PlanId, MatchMode), usize> = HashMap::new();
        let mut groups: Vec<((PlanId, MatchMode), Vec<&Pending>)> = Vec::new();
        for p in &drained {
            let key = (p.plan, p.mode);
            match group_index.get(&key) {
                Some(&g) => groups[g].1.push(p),
                None => {
                    group_index.insert(key, groups.len());
                    groups.push((key, vec![p]));
                }
            }
        }
        if let Some(router) = &mut self.router {
            router.begin_step();
        }
        let mut outcome = StepOutcome::default();
        let mut tagged: Vec<(RequestReport, u64)> = Vec::with_capacity(drained.len());
        for ((plan_id, mode), members) in &groups {
            let (executed, group_reports) = self.run_group(*plan_id, *mode, members);
            outcome.executed_molecules += executed;
            outcome.batches += 1;
            tagged.extend(group_reports);
        }
        tagged.sort_by_key(|(r, _)| r.request_id);
        self.executed += outcome.executed_molecules as u64;
        self.batches += outcome.batches as u64;
        outcome.service_ticks = match &self.router {
            Some(router) => router.step_makespan(),
            // PR 5 accounting, bit for bit: one tick per group, one per
            // executed molecule.
            None => (outcome.batches + outcome.executed_molecules) as u64,
        };
        if self.router.is_none() {
            // Unsharded the step is one indivisible batch: every request
            // completes when the step does.
            for t in &mut tagged {
                t.1 = outcome.service_ticks;
            }
        }
        for (report, offset) in tagged {
            outcome.reports.push(report);
            outcome.offsets.push(offset);
        }
        outcome
    }

    /// Executes one `(plan, mode)` group and scatters its reports, each
    /// tagged with its completion offset in virtual ticks from the step's
    /// start (the max finish tick over the request's executed molecules;
    /// 0 for fully cached requests and every unsharded request — the
    /// caller overwrites the latter with the step's service ticks).
    fn run_group(
        &mut self,
        plan_id: PlanId,
        mode: MatchMode,
        members: &[&Pending],
    ) -> (usize, Vec<(RequestReport, u64)>) {
        // Gather the molecules to execute: with caching, each uncached
        // class once; without, every occurrence (the ablation re-derives
        // everything, including repeats inside one window).
        let mut exec: Vec<MolId> = Vec::new();
        let mut cached: HashMap<MolId, Arc<MolOutcome>> = HashMap::new();
        if self.config.caching {
            let mut seen: HashMap<MolId, ()> = HashMap::new();
            for p in members {
                for &m in &p.mols {
                    if seen.contains_key(&m) {
                        continue;
                    }
                    seen.insert(m, ());
                    match self.results.get(plan_id, m, mode, self.epoch) {
                        Some(out) => {
                            cached.insert(m, out);
                        }
                        None => exec.push(m),
                    }
                }
            }
        } else {
            for p in members {
                exec.extend(p.mols.iter().copied());
            }
        }

        // Consult the standing-corpus index per plan-group: a pruned
        // molecule is one the index *proves* the exact filter would
        // reject outright (no GMCR pair, zero matches, zero join steps),
        // so its outcome is synthesized instead of executed. Grouping,
        // slicing, scheduling, and tick accounting all still see the
        // full exec list — only engine work disappears — which keeps
        // every run bit-identical to the index-off oracle.
        let pruned = self.screen_exec(plan_id, &exec);
        let (fresh, cacheable, finishes) = if self.router.is_some() {
            self.execute_sharded(plan_id, mode, &exec, pruned.as_deref())
        } else {
            let (fresh, cacheable) = self.execute(plan_id, mode, &exec, pruned.as_deref());
            let finishes = vec![0u64; exec.len()];
            (fresh, cacheable, finishes)
        };
        if self.config.caching {
            // Complete outcomes are exact; step-budget partials are a
            // deterministic property of the molecule's own work-group.
            // Deadline / embedding-cap / cancellation truncations are
            // wall-clock- or batch-dependent and never reach the cache.
            for ((&m, out), &ok) in exec.iter().zip(&fresh).zip(&cacheable) {
                if ok {
                    self.results
                        .insert(plan_id, m, mode, self.epoch, Arc::clone(out));
                }
            }
        }

        // Scatter: walk each request's molecules in order, pulling from
        // the cache map or the freshly executed outcomes.
        let fresh_pos: HashMap<MolId, usize> = if self.config.caching {
            exec.iter()
                .copied()
                .enumerate()
                .map(|(i, m)| (m, i))
                .collect()
        } else {
            HashMap::new()
        };
        let mut reports = Vec::with_capacity(members.len());
        let mut occurrence = 0usize;
        for p in members {
            let mut report = RequestReport {
                request_id: p.id,
                total_matches: 0,
                pair_counts: Vec::new(),
                truncated_molecules: Vec::new(),
                completion: Completion::Complete,
                cached_molecules: 0,
                executed_molecules: 0,
            };
            let mut offset = 0u64;
            for (local, &m) in p.mols.iter().enumerate() {
                let out: &MolOutcome = if self.config.caching {
                    match cached.get(&m) {
                        Some(out) => {
                            report.cached_molecules += 1;
                            out
                        }
                        None => {
                            report.executed_molecules += 1;
                            let pos = fresh_pos[&m];
                            offset = offset.max(finishes[pos]);
                            &fresh[pos]
                        }
                    }
                } else {
                    report.executed_molecules += 1;
                    let out = &fresh[occurrence];
                    offset = offset.max(finishes[occurrence]);
                    occurrence += 1;
                    out
                };
                for &(q, n) in &out.pairs {
                    report.pair_counts.push((local, q, n));
                    report.total_matches += n;
                }
                if out.unavailable {
                    // Shard gave up after exhausting every replica: the
                    // zero counts are a sound lower bound, flagged with
                    // the dedicated reason so callers can re-submit.
                    report.truncated_molecules.push(local);
                    report.completion = report
                        .completion
                        .merge(Completion::Truncated(TruncationReason::ShardUnavailable));
                } else if out.truncated {
                    report.truncated_molecules.push(local);
                    report.completion = report
                        .completion
                        .merge(Completion::Truncated(TruncationReason::StepBudget));
                }
            }
            reports.push((report, offset));
        }
        (exec.len(), reports)
    }

    /// Screens `exec` against the standing-corpus index (when enabled):
    /// returns the parallel pruned mask — `true` marks a molecule whose
    /// rejection is proven, so it need not run. The plan's screening
    /// shadow is extracted once and cached by [`PlanId`].
    fn screen_exec(&mut self, plan_id: PlanId, exec: &[MolId]) -> Option<Vec<bool>> {
        let index = self.mols.screen_index()?;
        let radius = index.config().radius;
        let query = match self.screens.get(&plan_id) {
            Some(q) => Arc::clone(q),
            None => {
                let plan = self.plans.plan(plan_id);
                let q = Arc::new(ScreenQuery::from_plan(&plan, radius));
                self.screens.insert(plan_id, Arc::clone(&q));
                q
            }
        };
        let index = self.mols.screen_index().expect("screen index checked");
        let mask: Vec<bool> = exec.iter().map(|&m| !index.screen(&query, m)).collect();
        self.screened += exec.len() as u64;
        self.pruned += mask.iter().filter(|&&p| p).count() as u64;
        Some(mask)
    }

    /// Runs `exec` through the streamed engine under the shared plan,
    /// returning one outcome per executed molecule (in `exec` order) plus
    /// a parallel cacheability mask. Molecules marked in `pruned` skip
    /// the engine and keep their synthesized empty outcome — exactly the
    /// value the engine would have produced (screening's soundness
    /// contract), so the cacheability default (`true`) is also exact.
    fn execute(
        &mut self,
        plan_id: PlanId,
        mode: MatchMode,
        exec: &[MolId],
        pruned: Option<&[bool]>,
    ) -> (Vec<Arc<MolOutcome>>, Vec<bool>) {
        if exec.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let survivors: Vec<usize> = match pruned {
            Some(mask) => (0..exec.len()).filter(|&i| !mask[i]).collect(),
            None => (0..exec.len()).collect(),
        };
        let mut outcomes: Vec<MolOutcome> = exec
            .iter()
            .map(|_| MolOutcome {
                pairs: Vec::new(),
                truncated: false,
                unavailable: false,
            })
            .collect();
        let mut cacheable = vec![true; exec.len()];
        if !survivors.is_empty() {
            let mut cfg = self.config.engine.clone();
            cfg.mode = mode;
            let runner = StreamRunner::new(cfg, self.config.memory_budget)
                .with_budget(self.config.budget.clone());
            let mols: Vec<LabeledGraph> = survivors
                .iter()
                .map(|&pos| self.mols.graph(exec[pos]).clone())
                .collect();
            let report = if self.config.caching {
                let plan = self.plans.plan(plan_id);
                runner.run_with_plan(&plan, mols, &self.queue)
            } else {
                // Ablation: rebuild the plan for every group execution.
                runner.run(self.plans.queries(plan_id), mols, &self.queue)
            };
            for &(d, q, n) in &report.pair_counts {
                outcomes[survivors[d]].pairs.push((q, n));
            }
            for &d in &report.truncated_graphs {
                outcomes[survivors[d]].truncated = true;
            }
            // Quarantined molecules whose reason is not a local step trip
            // (deadline / embedding cap) are also truncated, and their
            // partials are wall-clock- or batch-dependent: report them but
            // never cache them. With the serving default (step budgets
            // only), this set is empty.
            for quarantined in &report.quarantined {
                if quarantined.reason != TruncationReason::StepBudget {
                    outcomes[survivors[quarantined.index]].truncated = true;
                    cacheable[survivors[quarantined.index]] = false;
                }
            }
        }
        (outcomes.into_iter().map(Arc::new).collect(), cacheable)
    }

    /// Sharded variant of [`Server::execute`]: splits `exec` into
    /// per-shard slices by epoch-hashed ownership, schedules each slice
    /// through the [`ShardRouter`] (replica retry, work-stealing, seeded
    /// faults on the virtual clock), runs the surviving slices through
    /// the unchanged streamed engine, and folds the partial reports back
    /// into `exec` order with [`StreamReport::absorb_partial`] /
    /// [`StreamReport::normalize`] — bit-identical to the unsharded path.
    /// Returns outcomes, the cacheability mask, and each molecule's
    /// finish tick (its slice's completion, relative to the step start).
    ///
    /// Index screening composes per slice: pruned molecules stay in
    /// their slice for scheduling (ticks, replica wear, and degraded
    /// bookkeeping are identical to the index-off run) but are dropped
    /// from the engine batch — the synthesized empty outcome is exact.
    fn execute_sharded(
        &mut self,
        plan_id: PlanId,
        mode: MatchMode,
        exec: &[MolId],
        pruned: Option<&[bool]>,
    ) -> (Vec<Arc<MolOutcome>>, Vec<bool>, Vec<u64>) {
        if exec.is_empty() {
            return (Vec::new(), Vec::new(), Vec::new());
        }
        let num_shards = self.router.as_ref().expect("sharded path").num_shards();
        // Partition the exec *positions* by owning shard; iterating the
        // Vec in shard order keeps the dispatch trace deterministic.
        let mut slices: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (pos, &m) in exec.iter().enumerate() {
            let shard = self
                .router
                .as_ref()
                .expect("sharded path")
                .owner(m, self.epoch);
            slices[shard].push(pos);
        }
        let mut merged = StreamReport::default();
        let mut finishes = vec![0u64; exec.len()];
        let mut degraded: Vec<usize> = Vec::new();
        for (shard, slice) in slices.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let dispatch = self
                .router
                .as_mut()
                .expect("sharded path")
                .schedule_slice(shard, slice.len());
            for &pos in slice {
                finishes[pos] = dispatch.finish;
            }
            if dispatch.rank.is_none() {
                // Every replica exhausted: the slice degrades to zero
                // counts instead of failing the batch — pruned positions
                // included, exactly as in the index-off run.
                degraded.extend(slice.iter().copied());
                continue;
            }
            let kept: Vec<usize> = match pruned {
                Some(mask) => slice.iter().copied().filter(|&pos| !mask[pos]).collect(),
                None => slice.clone(),
            };
            if kept.is_empty() {
                continue;
            }
            let mut cfg = self.config.engine.clone();
            cfg.mode = mode;
            let runner = StreamRunner::new(cfg, self.config.memory_budget)
                .with_budget(self.config.budget.clone());
            let mols: Vec<LabeledGraph> = kept
                .iter()
                .map(|&pos| self.mols.graph(exec[pos]).clone())
                .collect();
            let part = if self.config.caching {
                let plan = self.plans.plan(plan_id);
                runner.run_with_plan(&plan, mols, &self.queue)
            } else {
                runner.run(self.plans.queries(plan_id), mols, &self.queue)
            };
            merged.absorb_partial(&part, &kept);
        }
        merged.normalize();
        let mut outcomes: Vec<MolOutcome> = exec
            .iter()
            .map(|_| MolOutcome {
                pairs: Vec::new(),
                truncated: false,
                unavailable: false,
            })
            .collect();
        for &(d, q, n) in &merged.pair_counts {
            outcomes[d].pairs.push((q, n));
        }
        for &d in &merged.truncated_graphs {
            outcomes[d].truncated = true;
        }
        let mut cacheable = vec![true; exec.len()];
        for quarantined in &merged.quarantined {
            if quarantined.reason != TruncationReason::StepBudget {
                outcomes[quarantined.index].truncated = true;
                cacheable[quarantined.index] = false;
            }
        }
        for pos in degraded {
            outcomes[pos].truncated = true;
            outcomes[pos].unavailable = true;
            cacheable[pos] = false;
        }
        (
            outcomes.into_iter().map(Arc::new).collect(),
            cacheable,
            finishes,
        )
    }

    /// Aggregate cache and admission counters.
    pub fn stats(&self) -> ServeStats {
        let (mol_hits, mol_misses) = self.mols.counters();
        let (plan_hits, plan_misses) = self.plans.counters();
        let (result_hits, result_misses) = self.results.counters();
        ServeStats {
            mol_hits,
            mol_misses,
            plan_hits,
            plan_misses,
            result_hits,
            result_misses,
            admitted: self.admitted,
            rejected: self.rejected,
            executed_molecules: self.executed,
            batches: self.batches,
            index_screened: self.screened,
            index_pruned: self.pruned,
        }
    }
}
