//! Deterministic load simulation: a seeded workload generator, a virtual
//! clock, and an unbatched oracle.
//!
//! There is no async runtime here on purpose. Wall-clock scheduling would
//! make soak runs unreproducible; instead the simulator drives the
//! [`Server`] with a sequential event loop over integer ticks. Arrivals
//! are drawn from a seeded splitmix64 stream, each [`Server::step`] costs
//! a deterministic number of service ticks (a constant dispatch overhead
//! plus one tick per executed molecule), and requests arriving while the
//! queue is full are rejected — the backpressure path. Same seed, same
//! trace, same per-request reports, at any `RAYON_NUM_THREADS`.
//!
//! The oracle replays a single request unbatched and uncached through a
//! fresh [`StreamRunner`] (which bottoms out in `Engine::run_planned`)
//! under the same governor budget. The soak tests assert the served
//! reports are bit-identical to the oracle's — batching and caching must
//! be invisible to results.

use crate::server::{MatchRequest, RejectReason, RequestReport, ServeConfig, Server};
use sigmo_core::{MatchMode, StreamRunner};
use sigmo_device::Queue;
use sigmo_graph::LabeledGraph;
use sigmo_mol::{functional_groups, MoleculeGenerator};

/// splitmix64: the workload generator's only randomness source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Workload shape for [`generate_workload`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of requests in the trace.
    pub requests: usize,
    /// Seed for arrivals, sampling, and mode choice.
    pub seed: u64,
    /// Size of the shared molecule pool requests sample from (re-use
    /// across requests is what the molecule/result caches exploit).
    pub mol_pool: usize,
    /// Number of distinct query sets (plan-cache working set).
    pub query_sets: usize,
    /// Queries per set, drawn from the functional-group library.
    pub queries_per_set: usize,
    /// Molecules per request are uniform in `1..=max_request_molecules`.
    pub max_request_molecules: usize,
    /// Mean inter-arrival gap in ticks (uniform in `0..2*mean`).
    pub mean_interarrival: u64,
    /// Percentage of requests issued in Find First mode.
    pub find_first_pct: u64,
    /// Popularity skew: each molecule pick is the *min* of `1 + skew`
    /// uniform draws, biasing traffic toward low pool indices (and so
    /// toward a few hot shards). `0` is the uniform trace — exactly one
    /// draw per molecule, byte-identical to traces generated before this
    /// knob existed.
    pub pool_skew: u32,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            requests: 200,
            seed: 0xc0ffee,
            mol_pool: 64,
            query_sets: 4,
            queries_per_set: 6,
            max_request_molecules: 12,
            mean_interarrival: 4,
            find_first_pct: 25,
            pool_skew: 0,
        }
    }
}

/// One trace entry: an arrival tick and the request to submit.
#[derive(Debug, Clone)]
pub struct TimedRequest {
    /// Virtual-clock tick at which the request arrives.
    pub arrival: u64,
    /// The request itself.
    pub request: MatchRequest,
}

/// Generates a seeded request trace. Molecules are exact clones from a
/// shared pool — so the canonical store dedups them — and query sets are
/// rotating windows over the functional-group library, so a handful of
/// plans serve the whole trace.
pub fn generate_workload(cfg: &WorkloadConfig) -> Vec<TimedRequest> {
    assert!(cfg.requests > 0 && cfg.mol_pool > 0 && cfg.query_sets > 0);
    assert!(cfg.queries_per_set > 0 && cfg.max_request_molecules > 0);
    let pool: Vec<LabeledGraph> = MoleculeGenerator::with_seed(cfg.seed)
        .generate_batch(cfg.mol_pool)
        .iter()
        .map(|m| m.to_labeled_graph())
        .collect();
    let library: Vec<LabeledGraph> = functional_groups().into_iter().map(|q| q.graph).collect();
    let sets: Vec<Vec<LabeledGraph>> = (0..cfg.query_sets)
        .map(|s| {
            (0..cfg.queries_per_set)
                .map(|k| library[(s * 3 + k) % library.len()].clone())
                .collect()
        })
        .collect();
    let mut state = cfg.seed ^ 0x5157_4d0a_d5f0_11ed;
    let mut clock = 0u64;
    let mut trace = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        clock += splitmix64(&mut state) % (2 * cfg.mean_interarrival.max(1));
        let set = (splitmix64(&mut state) as usize) % sets.len();
        let n_mols = 1 + (splitmix64(&mut state) as usize) % cfg.max_request_molecules;
        let molecules = (0..n_mols)
            .map(|_| {
                let mut idx = (splitmix64(&mut state) as usize) % pool.len();
                for _ in 0..cfg.pool_skew {
                    idx = idx.min((splitmix64(&mut state) as usize) % pool.len());
                }
                pool[idx].clone()
            })
            .collect();
        let mode = if splitmix64(&mut state) % 100 < cfg.find_first_pct {
            MatchMode::FindFirst
        } else {
            MatchMode::FindAll
        };
        trace.push(TimedRequest {
            arrival: clock,
            request: MatchRequest {
                queries: sets[set].clone(),
                molecules,
                mode,
            },
        });
    }
    trace
}

/// One admitted request's fate in a soak run.
#[derive(Debug, Clone)]
pub struct SoakEntry {
    /// Index into the input trace.
    pub trace_index: usize,
    /// The request id the server assigned.
    pub request_id: u64,
    /// Arrival tick (from the trace).
    pub arrival: u64,
    /// Tick at which the request completed: the end of its step
    /// (unsharded), or its last shard-slice's finish tick (sharded).
    pub completed: u64,
    /// The served report.
    pub report: RequestReport,
}

/// Aggregate result of a soak run.
#[derive(Debug, Default)]
pub struct SoakReport {
    /// Completed requests, in trace order.
    pub entries: Vec<SoakEntry>,
    /// Trace indices rejected at admission, with the reason.
    pub rejected: Vec<(usize, RejectReason)>,
    /// Tick at which the last step finished.
    pub final_tick: u64,
    /// Total server steps taken.
    pub steps: u64,
}

impl SoakReport {
    /// Completion latencies in ticks, in trace order.
    pub fn latencies(&self) -> Vec<u64> {
        self.entries
            .iter()
            .map(|e| e.completed - e.arrival)
            .collect()
    }
}

/// Drives a trace through the server on the virtual clock.
///
/// The loop is sequential: submit every arrival due at the current tick,
/// take one step (whose deterministic cost advances the clock), repeat.
/// When the server is idle the clock jumps to the next arrival. Arrivals
/// that land while the queue is full are rejected, not deferred — that is
/// the admission-control contract under sustained overload.
pub fn run_soak(server: &mut Server, trace: &[TimedRequest]) -> SoakReport {
    let mut report = SoakReport::default();
    let mut clock = 0u64;
    let mut next = 0usize; // next trace entry to submit
    let mut inflight: Vec<(usize, u64, u64)> = Vec::new(); // (trace idx, id, arrival)
    while next < trace.len() || server.pending_len() > 0 {
        if server.pending_len() == 0 && next < trace.len() {
            clock = clock.max(trace[next].arrival);
        }
        while next < trace.len() && trace[next].arrival <= clock {
            match server.submit(&trace[next].request) {
                Ok(id) => inflight.push((next, id, trace[next].arrival)),
                Err(reason) => report.rejected.push((next, reason)),
            }
            next += 1;
        }
        if server.pending_len() == 0 {
            continue;
        }
        let outcome = server.step();
        report.steps += 1;
        // Deterministic service cost, from the step itself: unsharded,
        // one dispatch tick per micro-batch group plus one tick per
        // executed molecule (every request completes at the step's end);
        // sharded, the step's makespan across rank clocks, with each
        // request completing at its own slice-finish offset.
        let step_start = clock;
        clock += outcome.service_ticks;
        for (served, offset) in outcome.reports.into_iter().zip(outcome.offsets) {
            let pos = inflight
                .iter()
                .position(|&(_, id, _)| id == served.request_id)
                .expect("served an unknown request id");
            let (trace_index, request_id, arrival) = inflight.remove(pos);
            report.entries.push(SoakEntry {
                trace_index,
                request_id,
                arrival,
                completed: step_start + offset,
                report: served,
            });
        }
    }
    assert!(inflight.is_empty(), "admitted requests must all complete");
    report.entries.sort_by_key(|e| e.trace_index);
    report.final_tick = clock;
    report
}

/// What the oracle asserts per request: totals, per-pair attribution, and
/// the truncated set, all with request-local molecule indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Total embeddings / matched pairs.
    pub total_matches: u64,
    /// `(request-local molecule index, query index, matches)`.
    pub pair_counts: Vec<(usize, usize, u64)>,
    /// Request-local indices of truncated molecules.
    pub truncated_molecules: Vec<usize>,
}

/// Replays one request unbatched and uncached: a fresh [`StreamRunner`]
/// (fresh plan, no sharing with any other request) under the same memory
/// and governor budgets the server uses.
pub fn oracle_replay(config: &ServeConfig, request: &MatchRequest, queue: &Queue) -> OracleOutcome {
    let mut cfg = config.engine.clone();
    cfg.mode = request.mode;
    let runner = StreamRunner::new(cfg, config.memory_budget).with_budget(config.budget.clone());
    let streamed = runner.run(&request.queries, request.molecules.iter().cloned(), queue);
    let mut truncated: Vec<usize> = streamed.truncated_graphs.clone();
    for q in &streamed.quarantined {
        truncated.push(q.index);
    }
    truncated.sort_unstable();
    truncated.dedup();
    OracleOutcome {
        total_matches: streamed.total_matches,
        pair_counts: streamed.pair_counts.clone(),
        truncated_molecules: truncated,
    }
}

/// The served report, projected onto the oracle's comparison shape.
pub fn served_outcome(report: &RequestReport) -> OracleOutcome {
    OracleOutcome {
        total_matches: report.total_matches,
        pair_counts: report.pair_counts.clone(),
        truncated_molecules: report.truncated_molecules.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmo_device::DeviceProfile;

    fn small_workload() -> Vec<TimedRequest> {
        generate_workload(&WorkloadConfig {
            requests: 40,
            mol_pool: 16,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn soak_matches_unbatched_oracle() {
        let trace = small_workload();
        let config = ServeConfig::default();
        let mut server = Server::new(config.clone(), Queue::new(DeviceProfile::host()));
        let soak = run_soak(&mut server, &trace);
        assert!(soak.rejected.is_empty(), "default queue must admit all");
        assert_eq!(soak.entries.len(), trace.len());
        let queue = Queue::new(DeviceProfile::host());
        for entry in &soak.entries {
            let oracle = oracle_replay(&config, &trace[entry.trace_index].request, &queue);
            assert_eq!(
                served_outcome(&entry.report),
                oracle,
                "request {} diverged from the oracle",
                entry.trace_index
            );
        }
        let stats = server.stats();
        assert!(stats.mol_hits > 0, "pool reuse must hit the mol store");
        assert!(
            stats.plan_hits > 0,
            "query-set reuse must hit the plan cache"
        );
        assert!(
            stats.result_hits > 0,
            "repeat molecules must hit the result cache"
        );
    }

    #[test]
    fn soak_is_reproducible_and_rejects_under_overload() {
        let trace = generate_workload(&WorkloadConfig {
            requests: 80,
            mean_interarrival: 0, // everything arrives at once
            ..WorkloadConfig::default()
        });
        let config = ServeConfig {
            queue_capacity: 8,
            max_batch_requests: 4,
            ..ServeConfig::default()
        };
        let run = |cfg: &ServeConfig| {
            let mut server = Server::new(cfg.clone(), Queue::new(DeviceProfile::host()));
            run_soak(&mut server, &trace)
        };
        let a = run(&config);
        let b = run(&config);
        assert!(!a.rejected.is_empty(), "burst must overflow the queue");
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.final_tick, b.final_tick);
        assert_eq!(a.entries.len(), b.entries.len());
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            assert_eq!(ea.completed, eb.completed);
            assert_eq!(ea.report, eb.report);
        }
    }

    #[test]
    fn no_cache_ablation_matches_cached_results() {
        let trace = small_workload();
        let cached_cfg = ServeConfig::default();
        let ablated_cfg = ServeConfig {
            caching: false,
            ..ServeConfig::default()
        };
        let mut cached = Server::new(cached_cfg, Queue::new(DeviceProfile::host()));
        let mut ablated = Server::new(ablated_cfg, Queue::new(DeviceProfile::host()));
        let a = run_soak(&mut cached, &trace);
        let b = run_soak(&mut ablated, &trace);
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            assert_eq!(served_outcome(&ea.report), served_outcome(&eb.report));
        }
        let (sa, sb) = (cached.stats(), ablated.stats());
        assert_eq!(sb.result_hits, 0, "ablation must not consult the cache");
        assert!(
            sa.executed_molecules < sb.executed_molecules,
            "caching must shrink the executed set ({} vs {})",
            sa.executed_molecules,
            sb.executed_molecules
        );
    }

    #[test]
    fn admission_rejects_malformed_and_oversized() {
        let mut server = Server::new(
            ServeConfig {
                max_request_molecules: 2,
                ..ServeConfig::default()
            },
            Queue::new(DeviceProfile::host()),
        );
        let mol = MoleculeGenerator::with_seed(1)
            .generate()
            .to_labeled_graph();
        let query = functional_groups()[0].graph.clone();
        let empty = MatchRequest {
            queries: vec![],
            molecules: vec![mol.clone()],
            mode: MatchMode::FindAll,
        };
        assert_eq!(server.submit(&empty), Err(RejectReason::Malformed));
        let oversized = MatchRequest {
            queries: vec![query.clone()],
            molecules: vec![mol.clone(), mol.clone(), mol.clone()],
            mode: MatchMode::FindAll,
        };
        assert_eq!(server.submit(&oversized), Err(RejectReason::Oversized));
        let ok = MatchRequest {
            queries: vec![query],
            molecules: vec![mol],
            mode: MatchMode::FindAll,
        };
        assert!(server.submit(&ok).is_ok());
        assert_eq!(server.stats().rejected, 2);
    }
}
