//! Batched request serving for the SIGMo engine.
//!
//! The paper frames SIGMo as the matching core of a high-throughput
//! screening service (§1–2): many concurrent clients, each with a small
//! query set and a slice of a molecule library, sharing one accelerator.
//! This crate is that serving layer:
//!
//! * [`Server`] — admission control over a bounded queue (backpressure by
//!   rejection), micro-batching of compatible requests into shared
//!   [`sigmo_core::StreamRunner`] passes, and per-request scatter of the
//!   batched attribution.
//! * [`cache`] — three dedup stores: the canonical-molecule store
//!   ([`cache::MolStore`], keyed on [`sigmo_mol::canonical_code`]), the
//!   plan cache ([`cache::PlanCache`], keyed on ordered query canonical
//!   codes), and the per-molecule result cache ([`cache::ResultCache`]).
//! * [`sim`] — a deterministic virtual-clock load simulator and the
//!   unbatched oracle the soak tests compare against.
//! * [`shard`] — the sharded serving tier: the corpus partitioned across
//!   simulated ranks with replica retry, seeded fault injection,
//!   work-stealing, and graceful degradation — results bit-identical to
//!   the unsharded fault-free oracle.
//!
//! The [`sigmo_index`] screening tier plugs in underneath the molecule
//! store: each interned molecule's signature digest is registered once,
//! and every execution batch is screened against the standing index
//! before the engine runs. Screening is sound (DESIGN.md §13) — a pruned
//! molecule's synthesized empty outcome is exactly what the engine would
//! have produced — so index-on and index-off transcripts are
//! bit-identical, ticks included.
//!
//! The design contract (DESIGN.md §9): batching and caching are invisible
//! to results. A molecule's outcome is a pure function of (plan, molecule,
//! mode, step budget) because the stream runner bisects truncated chunks
//! down to solo runs and join-step budgets are local to each molecule's
//! work-group — so serving the cached outcome is bit-identical to
//! re-running the molecule alone.

pub mod cache;
pub mod server;
pub mod shard;
pub mod sim;

pub use cache::{MolOutcome, MolStore, PlanCache, ResultCache};
pub use server::{
    CorpusLoad, MatchRequest, RejectReason, RequestReport, ServeConfig, ServeStats, Server,
    StepOutcome,
};
pub use shard::{ShardConfig, ShardRouter, ShardStats, SliceDispatch};
pub use sigmo_index::{FrozenIndex, IndexConfig, IndexFileError, ScreenQuery};
pub use sim::{
    generate_workload, oracle_replay, run_soak, served_outcome, OracleOutcome, SoakEntry,
    SoakReport, TimedRequest, WorkloadConfig,
};
