//! The sharded serving tier: deterministic molecule→shard routing,
//! replica-aware dispatch under seeded faults, and work-stealing.
//!
//! The paper's 256-GPU deployment statically partitions the corpus with
//! no recovery story (§5.4.2, a stated limitation). This module is the
//! serving-side answer: the [`crate::Server`]'s corpus is partitioned
//! across `N` simulated ranks with `R`-way replication (placement from
//! [`sigmo_cluster::replica_placement`], one replica per node while nodes
//! last), each micro-batch's executed molecules are split into per-shard
//! slices, and every slice is dispatched on the virtual clock:
//!
//! * a slice whose target rank is **crashed** ([`FaultPlan::crashed`])
//!   fails at dispatch; the rank is remembered as dead and the slice is
//!   re-dispatched to a replica under [`RetryPolicy`] backoff
//!   ([`RetryPolicy::backoff_ticks`] — integer, saturating);
//! * a seeded **transient failure** (splitmix64 stream, one draw per
//!   dispatch) costs a dispatch and a backoff, then retries;
//! * a **straggler** rank ([`FaultPlan::stragglers`]) serves the slice
//!   slowed by its factor;
//! * a slice that exhausts `max_attempts` (or whose every replica is
//!   known dead) is **degraded**: its molecules report zero matches with
//!   `Truncated(ShardUnavailable)` — a sound lower bound — instead of
//!   failing the whole batch.
//!
//! With [`ShardConfig::work_stealing`] on, a dispatch whose primary's
//! backlog exceeds the least-loaded live replica's by more than
//! [`ShardConfig::steal_margin`] ticks is diverted there — hot shards
//! (skewed molecule popularity) shed work onto their replicas. The
//! decision reads only the router's own per-rank busy ticks, so the
//! schedule is bit-deterministic: same config, same trace, same
//! schedule, at any thread count.
//!
//! Crucially, none of this touches *results*: faults, retries, stealing,
//! and backoff only move slices between ranks and ticks on the clock.
//! Each slice still runs through the unchanged word-parallel
//! [`sigmo_core::StreamRunner`] path, and the partial [`StreamReport`]s
//! are folded back with [`StreamReport::absorb_partial`] /
//! [`StreamReport::normalize`] — bit-identical to the unsharded,
//! fault-free oracle (pinned in `tests/shard_soak.rs`).
//!
//! [`StreamReport`]: sigmo_core::StreamReport
//! [`StreamReport::absorb_partial`]: sigmo_core::StreamReport::absorb_partial
//! [`StreamReport::normalize`]: sigmo_core::StreamReport::normalize

use crate::cache::MolId;
use sigmo_cluster::{replica_placement, FaultPlan, RetryPolicy};

/// splitmix64: the router's only randomness source (ownership hashing and
/// the transient-failure stream).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Configuration of the sharded serving tier.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards == number of simulated ranks (shard `s`'s primary
    /// replica is rank `s`).
    pub shards: usize,
    /// Replicas per shard (1 = no redundancy; a crash then degrades).
    pub replicas: usize,
    /// Ranks per simulated node — the replica-placement failure-domain
    /// stride (the paper's machines hold 4 GPUs each).
    pub gpus_per_node: usize,
    /// Crashed ranks and stragglers. `num_ranks` must equal `shards`.
    /// (The batch-mode per-shard `transient_failures` counts are ignored
    /// here; serving transients come from [`ShardConfig::transient_pct`].)
    pub fault: FaultPlan,
    /// Percentage (0–100) of dispatches that fail transiently, drawn from
    /// a splitmix64 stream seeded by [`ShardConfig::fault_seed`].
    pub transient_pct: u64,
    /// Seed for molecule→shard ownership hashing and the transient draw.
    pub fault_seed: u64,
    /// Attempt bound and backoff shape for failed dispatches.
    pub retry: RetryPolicy,
    /// Base backoff in virtual ticks (doubles per further retry,
    /// saturating — [`RetryPolicy::backoff_ticks`]).
    pub backoff_base_ticks: u64,
    /// Virtual ticks charged per dispatch attempt (the work-queue
    /// round-trip a real deployment pays per slice).
    pub dispatch_ticks: u64,
    /// Divert dispatches from backlogged primaries to their least-loaded
    /// live replica.
    pub work_stealing: bool,
    /// Minimum backlog advantage (ticks) before a dispatch is stolen.
    pub steal_margin: u64,
}

impl ShardConfig {
    /// A fault-free sharded configuration with work-stealing on.
    pub fn new(shards: usize, replicas: usize) -> Self {
        Self {
            shards,
            replicas,
            gpus_per_node: 4,
            fault: FaultPlan::none(shards),
            transient_pct: 0,
            fault_seed: 0x0051_6d08,
            retry: RetryPolicy::default(),
            backoff_base_ticks: 4,
            dispatch_ticks: 1,
            work_stealing: true,
            steal_margin: 2,
        }
    }

    /// Replaces the fault plan (crashes + stragglers).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the transient dispatch-failure percentage.
    pub fn with_transient_pct(mut self, pct: u64) -> Self {
        self.transient_pct = pct.min(100);
        self
    }
}

/// Per-shard dispatch/latency records — the work-stealing signal and the
/// soak benches' observability surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Successful slice executions.
    pub dispatches: u64,
    /// Failed dispatch attempts (crashed target or transient failure).
    pub retries: u64,
    /// Dispatches diverted off the primary by work-stealing.
    pub steals: u64,
    /// Slices that exhausted every replica and degraded.
    pub degraded_slices: u64,
    /// Molecules executed for this shard.
    pub executed_molecules: u64,
    /// Service ticks charged to this shard's executions.
    pub busy_ticks: u64,
    /// Deepest primary backlog (ticks) observed at a dispatch.
    pub max_queue_depth: u64,
}

/// Outcome of scheduling one shard-slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceDispatch {
    /// The shard the slice belongs to.
    pub shard: usize,
    /// Rank that executed it, or `None` when the slice degraded.
    pub rank: Option<usize>,
    /// Tick (relative to the step start) at which the slice finished —
    /// for a degraded slice, the tick its last attempt gave up.
    pub finish: u64,
    /// Whether work-stealing diverted it off the primary.
    pub stolen: bool,
}

/// The shard router: owns replica placement, per-rank virtual clocks, the
/// seeded fault machinery, and the per-shard records.
pub struct ShardRouter {
    config: ShardConfig,
    /// `placement[s]` = replica ranks of shard `s`, primary first.
    placement: Vec<Vec<usize>>,
    /// Ranks observed crashed at some dispatch (the router only learns of
    /// a crash by trying; once seen, the rank is never targeted again).
    known_dead: Vec<bool>,
    /// Per-rank busy-until tick, relative to the current step's start.
    rank_busy: Vec<u64>,
    /// Longest finish/give-up tick seen this step (the step makespan).
    span: u64,
    /// State of the transient-failure draw stream.
    transient_state: u64,
    stats: Vec<ShardStats>,
}

impl ShardRouter {
    /// Builds a router, validating the configuration.
    pub fn new(config: ShardConfig) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(
            (1..=config.shards).contains(&config.replicas),
            "need 1..={} replicas, got {}",
            config.shards,
            config.replicas
        );
        assert_eq!(
            config.fault.num_ranks, config.shards,
            "fault plan drawn for a different rank count"
        );
        assert!(config.retry.max_attempts >= 1);
        assert!(config.gpus_per_node >= 1);
        let placement = (0..config.shards)
            .map(|s| replica_placement(config.shards, config.gpus_per_node, s, config.replicas))
            .collect();
        let transient_state = config.fault_seed ^ 0x7a61_5ebf_0d15_9a7c;
        Self {
            known_dead: vec![false; config.shards],
            rank_busy: vec![0; config.shards],
            span: 0,
            transient_state,
            stats: vec![ShardStats::default(); config.shards],
            placement,
            config,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.config.shards
    }

    /// The router's configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// The replica ranks of `shard`, primary first.
    pub fn placement(&self, shard: usize) -> &[usize] {
        &self.placement[shard]
    }

    /// Per-shard dispatch/latency records.
    pub fn stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// The shard owning molecule `id` under partition version `epoch`.
    /// A pure seeded hash: deterministic, uniform across shards, and
    /// re-drawn wholesale when the epoch bumps (a repartition).
    pub fn owner(&self, id: MolId, epoch: u64) -> usize {
        let mut state = self
            .config
            .fault_seed
            .wrapping_add(epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ (u64::from(id) + 1);
        (splitmix64(&mut state) % self.config.shards as u64) as usize
    }

    /// Resets the per-rank clocks for a new server step. Rank backlogs do
    /// not persist across steps because the sequential step loop charges
    /// the whole step's makespan to the global clock before the next step
    /// begins — every rank has drained by then. Queueing shows up
    /// *within* a step, across the window's slices.
    pub fn begin_step(&mut self) {
        self.rank_busy.iter_mut().for_each(|b| *b = 0);
        self.span = 0;
    }

    /// Makespan of the current step so far: the latest finish or give-up
    /// tick across every slice scheduled since [`ShardRouter::begin_step`].
    pub fn step_makespan(&self) -> u64 {
        self.span
    }

    /// Schedules one `molecules`-long slice of `shard`'s work, playing
    /// out crashes, transient failures, backoff, stragglers, and
    /// work-stealing on the virtual clock. Returns where (and whether)
    /// the slice ran; the *caller* executes it — the router never touches
    /// results.
    pub fn schedule_slice(&mut self, shard: usize, molecules: usize) -> SliceDispatch {
        let mut ready = 0u64;
        for attempt in 1..=self.config.retry.max_attempts {
            // Replicas not yet observed dead, placement order.
            let live: Vec<usize> = self.placement[shard]
                .iter()
                .copied()
                .filter(|&r| !self.known_dead[r])
                .collect();
            let Some(&first_live) = live.first() else {
                break; // every replica known dead
            };
            // Record the primary backlog this slice sees — the queue-depth
            // signal work-stealing acts on.
            let depth = self.rank_busy[first_live].saturating_sub(ready);
            if depth > self.stats[shard].max_queue_depth {
                self.stats[shard].max_queue_depth = depth;
            }
            let (target, diverted) = if self.config.work_stealing {
                let best = live
                    .iter()
                    .copied()
                    .min_by_key(|&r| (self.rank_busy[r], r))
                    .expect("live is nonempty");
                let advantage = self.rank_busy[first_live].saturating_sub(self.rank_busy[best]);
                if best != first_live && advantage > self.config.steal_margin {
                    (best, true)
                } else {
                    (first_live, false)
                }
            } else {
                // Static routing: primary first, then rotate replicas on
                // retries.
                (live[(attempt - 1) % live.len()], false)
            };
            let start = ready.max(self.rank_busy[target]);
            if self.config.fault.crashed.contains(&target) {
                // Discovered at dispatch: the rank is dead. Remember the
                // corpse, back off, retry on a replica.
                self.known_dead[target] = true;
                self.stats[shard].retries += 1;
                ready = start
                    + self.config.dispatch_ticks
                    + self
                        .config
                        .retry
                        .backoff_ticks(self.config.backoff_base_ticks, attempt);
                self.span = self.span.max(ready);
                continue;
            }
            if self.transient_fails() {
                // The dispatch itself failed (network blip): the target
                // briefly busied, the slice backs off and retries.
                self.rank_busy[target] = start + self.config.dispatch_ticks;
                self.stats[shard].retries += 1;
                ready = start
                    + self.config.dispatch_ticks
                    + self
                        .config
                        .retry
                        .backoff_ticks(self.config.backoff_base_ticks, attempt);
                self.span = self.span.max(ready);
                continue;
            }
            // Success: the slice occupies the target for a dispatch plus
            // one tick per molecule, stretched by the straggler factor.
            let slowdown = self.config.fault.slowdown(target);
            let service_mols = ((molecules as f64) * slowdown).ceil() as u64;
            let service = self.config.dispatch_ticks + service_mols;
            let finish = start + service;
            self.rank_busy[target] = finish;
            self.span = self.span.max(finish);
            self.stats[shard].dispatches += 1;
            self.stats[shard].executed_molecules += molecules as u64;
            self.stats[shard].busy_ticks += service;
            if diverted {
                self.stats[shard].steals += 1;
            }
            return SliceDispatch {
                shard,
                rank: Some(target),
                finish,
                stolen: diverted,
            };
        }
        // Attempts exhausted (or no replica left): degrade.
        self.stats[shard].degraded_slices += 1;
        self.span = self.span.max(ready);
        SliceDispatch {
            shard,
            rank: None,
            finish: ready,
            stolen: false,
        }
    }

    /// One seeded draw from the transient-failure stream.
    fn transient_fails(&mut self) -> bool {
        if self.config.transient_pct == 0 {
            return false;
        }
        splitmix64(&mut self.transient_state) % 100 < self.config.transient_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ownership_is_deterministic_and_covers_all_shards() {
        let router = ShardRouter::new(ShardConfig::new(8, 2));
        let mut seen = BTreeSet::new();
        for id in 0..512u32 {
            let s = router.owner(id, 0);
            assert!(s < 8);
            assert_eq!(s, router.owner(id, 0), "ownership must be stable");
            seen.insert(s);
        }
        assert_eq!(seen.len(), 8, "512 ids must touch every shard");
        // A repartition (epoch bump) re-draws ownership: some molecule
        // must move (all 512 staying put would be a broken hash).
        let moved = (0..512u32).any(|id| router.owner(id, 0) != router.owner(id, 1));
        assert!(moved, "epoch bump must reshuffle ownership");
    }

    #[test]
    fn placement_is_primary_first_and_distinct() {
        let router = ShardRouter::new(ShardConfig::new(8, 3));
        for s in 0..8 {
            let p = router.placement(s);
            assert_eq!(p.len(), 3);
            assert_eq!(p[0], s, "shard's primary is its own rank");
            let set: BTreeSet<usize> = p.iter().copied().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn clean_dispatch_serializes_on_the_primary() {
        let mut router = ShardRouter::new(ShardConfig {
            work_stealing: false,
            ..ShardConfig::new(4, 2)
        });
        router.begin_step();
        let a = router.schedule_slice(1, 10);
        let b = router.schedule_slice(1, 5);
        assert_eq!(a.rank, Some(1));
        assert_eq!(b.rank, Some(1));
        assert_eq!(a.finish, 11, "dispatch tick + 10 molecules");
        assert_eq!(b.finish, 17, "queued behind the first slice");
        assert_eq!(router.step_makespan(), 17);
        assert_eq!(router.stats()[1].max_queue_depth, 11);
        // A new step starts from idle ranks.
        router.begin_step();
        assert_eq!(router.step_makespan(), 0);
        let c = router.schedule_slice(1, 1);
        assert_eq!(c.finish, 2);
    }

    #[test]
    fn crashed_primary_fails_over_to_its_replica() {
        let mut fault = FaultPlan::none(4);
        fault.crashed.insert(2);
        let mut router = ShardRouter::new(ShardConfig {
            work_stealing: false,
            backoff_base_ticks: 4,
            ..ShardConfig::new(4, 2).with_fault(fault)
        });
        router.begin_step();
        let d = router.schedule_slice(2, 3);
        let replica = router.placement(2)[1];
        assert_eq!(d.rank, Some(replica), "failover to the replica");
        // Failed dispatch (1 tick) + backoff (4) + dispatch (1) + 3 mols.
        assert_eq!(d.finish, 9);
        assert_eq!(router.stats()[2].retries, 1);
        assert_eq!(router.stats()[2].dispatches, 1);
        // The corpse is remembered: the next slice skips straight to the
        // replica with no failed attempt.
        let d2 = router.schedule_slice(2, 3);
        assert_eq!(d2.rank, Some(replica));
        assert_eq!(router.stats()[2].retries, 1, "no second discovery");
    }

    #[test]
    fn exhausted_replicas_degrade_instead_of_panicking() {
        let mut fault = FaultPlan::none(2);
        fault.crashed.insert(0);
        fault.crashed.insert(1);
        let mut router = ShardRouter::new(ShardConfig {
            work_stealing: false,
            ..ShardConfig::new(2, 2).with_fault(fault)
        });
        router.begin_step();
        let d = router.schedule_slice(0, 5);
        assert_eq!(d.rank, None, "every replica dead: degraded");
        assert_eq!(router.stats()[0].degraded_slices, 1);
        assert!(d.finish > 0, "the attempts cost time before giving up");
        // Transient storms degrade too once attempts run out.
        let mut stormy = ShardRouter::new(ShardConfig {
            work_stealing: false,
            ..ShardConfig::new(2, 1).with_transient_pct(100)
        });
        stormy.begin_step();
        let d = stormy.schedule_slice(0, 5);
        assert_eq!(d.rank, None);
        assert_eq!(
            stormy.stats()[0].retries,
            stormy.config().retry.max_attempts as u64,
            "every attempt failed transiently"
        );
    }

    #[test]
    fn work_stealing_diverts_past_the_margin() {
        let cfg = ShardConfig {
            steal_margin: 2,
            ..ShardConfig::new(4, 2)
        };
        let mut router = ShardRouter::new(cfg);
        router.begin_step();
        // Load shard 1's primary past the margin, then dispatch again:
        // the second slice must be stolen by the (idle) replica.
        let first = router.schedule_slice(1, 10);
        assert!(!first.stolen, "idle ranks: no steal");
        let second = router.schedule_slice(1, 10);
        assert!(second.stolen, "backlogged primary: steal");
        assert_eq!(second.rank, Some(router.placement(1)[1]));
        assert_eq!(router.stats()[1].steals, 1);
        // Stolen work runs in parallel with the primary's backlog.
        assert_eq!(second.finish, 11);
        let third = router.schedule_slice(1, 10);
        // Same trace without stealing serializes on the primary.
        let mut fixed = ShardRouter::new(ShardConfig {
            work_stealing: false,
            steal_margin: 2,
            ..ShardConfig::new(4, 2)
        });
        fixed.begin_step();
        fixed.schedule_slice(1, 10);
        let queued = fixed.schedule_slice(1, 10);
        let tail = fixed.schedule_slice(1, 10);
        assert!(queued.finish > second.finish);
        assert!(tail.finish > third.finish);
        assert!(
            fixed.stats()[1].max_queue_depth > router.stats()[1].max_queue_depth,
            "stealing must cut the hot primary's deepest backlog ({} vs {})",
            fixed.stats()[1].max_queue_depth,
            router.stats()[1].max_queue_depth
        );
    }

    #[test]
    fn straggler_stretches_service_deterministically() {
        let mut fault = FaultPlan::none(4);
        fault.stragglers.insert(3, 4.0);
        let mut router = ShardRouter::new(ShardConfig {
            work_stealing: false,
            ..ShardConfig::new(4, 1).with_fault(fault)
        });
        router.begin_step();
        let d = router.schedule_slice(3, 5);
        assert_eq!(d.rank, Some(3));
        assert_eq!(d.finish, 21, "1 dispatch + ceil(5 × 4.0) service");
    }

    #[test]
    fn transient_stream_is_seeded_and_reproducible() {
        let run = |seed: u64| {
            let mut router = ShardRouter::new(ShardConfig {
                fault_seed: seed,
                work_stealing: false,
                ..ShardConfig::new(4, 2).with_transient_pct(40)
            });
            router.begin_step();
            (0..32)
                .map(|i| router.schedule_slice(i % 4, 2).finish)
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different blips");
    }
}
