//! The serving layer's three deduplication stores.
//!
//! * [`MolStore`] — canonical-molecule interning: every submitted molecule
//!   is keyed by [`sigmo_mol::canonical_code`], so isomorphic duplicates
//!   across requests collapse onto one stored representative (the
//!   first-seen variant) and one [`MolId`].
//! * [`PlanCache`] — [`QueryPlan`] interning keyed by the *ordered*
//!   sequence of query canonical codes. Order matters: per-request results
//!   attribute matches to query indices, so `[A, B]` and `[B, A]` are
//!   different plans even though they are the same set.
//! * [`ResultCache`] — per-molecule outcomes keyed by
//!   `(plan, molecule, mode, shard epoch)`. Sound because a molecule's
//!   results are batch-composition independent (DESIGN.md §9): complete
//!   outcomes are exact, and step-budget partials are a deterministic
//!   property of the molecule's own work-group. The shard epoch is the
//!   corpus partition version: a repartition (molecule added/removed,
//!   shard count changed) bumps it, so results merged under the old
//!   partition can never be served against the new one (DESIGN.md §12).

use sigmo_core::engine::EngineConfig;
use sigmo_core::{LabelSchema, MatchMode, QueryPlan};
use sigmo_graph::LabeledGraph;
use sigmo_index::{FrozenIndex, IndexConfig, MoleculeIndex};
use sigmo_mol::canonical_code;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Dense id of an interned molecule in a [`MolStore`].
pub type MolId = u32;

/// Dense id of an interned query plan in a [`PlanCache`].
pub type PlanId = usize;

/// The exact (labeling-sensitive) byte form of a graph: node labels then
/// the edge list as stored. Two graphs with equal exact keys are equal as
/// labeled adjacency structures, hence trivially isomorphic — so the
/// exact map is a sound fast path in front of the canonical one.
fn exact_key(graph: &LabeledGraph) -> Vec<u8> {
    // Formal charges distinguish otherwise-identical graphs (e.g. acetate
    // vs acetic acid's heavy skeleton). The two counts up front fix every
    // section's length, keeping the key injective.
    let charges = graph.charges();
    let mut key =
        Vec::with_capacity(12 + graph.num_nodes() + 9 * graph.num_edges() + 5 * charges.len());
    key.extend_from_slice(&(graph.num_nodes() as u32).to_le_bytes());
    key.extend_from_slice(&(charges.len() as u32).to_le_bytes());
    key.extend_from_slice(graph.labels());
    for &(v, c) in charges {
        key.extend_from_slice(&v.to_le_bytes());
        key.push(c as u8);
    }
    for (a, b, l) in graph.edges() {
        key.extend_from_slice(&a.to_le_bytes());
        key.extend_from_slice(&b.to_le_bytes());
        key.push(l);
    }
    key
}

/// Canonical-molecule store: interns molecules by canonical code, with an
/// exact-bytes map in front so repeat submissions of the same variant
/// (the common case in serving traffic) skip Morgan canonicalization —
/// which otherwise dominates a warm server's submit path.
#[derive(Default)]
pub struct MolStore {
    exact: HashMap<Vec<u8>, MolId>,
    index: HashMap<Vec<u8>, MolId>,
    graphs: Vec<LabeledGraph>,
    /// The standing-corpus screening index, maintained inline: interning
    /// a new class digests it, retiring a class tombstones it. `None`
    /// when screening is disabled.
    screen: Option<MoleculeIndex>,
    hits: u64,
    misses: u64,
}

impl MolStore {
    /// Creates an empty store with screening disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store that maintains a [`MoleculeIndex`] over
    /// the corpus: every interned class is digested once at ingest
    /// under `schema` (which must be the engine's signature schema).
    pub fn with_screen_index(config: IndexConfig, schema: &LabelSchema) -> Self {
        Self {
            screen: Some(MoleculeIndex::new(config, schema)),
            ..Self::default()
        }
    }

    /// The screening index, when one is maintained.
    pub fn screen_index(&self) -> Option<&MoleculeIndex> {
        self.screen.as_ref()
    }

    /// Bulk-loads a frozen index file into an **empty** store: stored
    /// graphs become the corpus (absent slots — compacted tombstones —
    /// keep their ids retired), interning entries are rebuilt, and with
    /// `keep_screen` the file's digests are adopted verbatim (no
    /// signature recompute). Returns the number of live molecules.
    pub fn adopt_frozen(
        &mut self,
        frozen: &FrozenIndex,
        keep_screen: bool,
        schema: &LabelSchema,
    ) -> Result<usize, String> {
        if !self.is_empty() || self.screen.as_ref().is_some_and(|s| !s.is_empty()) {
            return Err("index preload requires an empty molecule store".into());
        }
        let (index, graphs) = frozen.thaw().map_err(|e| e.to_string())?;
        if keep_screen && index.schema() != schema {
            return Err("index label schema does not match the engine schema".into());
        }
        let mut live = 0usize;
        for (id, graph) in graphs.into_iter().enumerate() {
            match graph {
                Some(graph) => {
                    self.exact.insert(exact_key(&graph), id as MolId);
                    self.index.insert(canonical_code(&graph), id as MolId);
                    self.graphs.push(graph);
                    live += 1;
                }
                // A compacted tombstone: the slot keeps its id (so fresh
                // interns mint above it) but is not resolvable.
                None => self.graphs.push(LabeledGraph::new()),
            }
        }
        if keep_screen {
            self.screen = Some(index);
        }
        Ok(live)
    }

    /// Serializes the maintained screening index (with the stored
    /// representatives) to the persistent `SIGMOIDX` byte layout.
    /// Errors when the store maintains no index.
    pub fn freeze_index(&self) -> Result<Vec<u8>, String> {
        let screen = self
            .screen
            .as_ref()
            .ok_or_else(|| "this store maintains no screening index".to_string())?;
        let graphs: Vec<Option<&LabeledGraph>> = self.graphs.iter().map(Some).collect();
        Ok(sigmo_index::serialize(screen, &graphs))
    }

    /// Interns a molecule, returning the id of its isomorphism class.
    /// The first-seen variant becomes the stored representative that all
    /// later lookups (and executions) use.
    pub fn intern(&mut self, graph: &LabeledGraph) -> MolId {
        let exact = exact_key(graph);
        if let Some(&id) = self.exact.get(&exact) {
            self.hits += 1;
            return id;
        }
        let key = canonical_code(graph);
        let id = match self.index.get(&key) {
            Some(&id) => {
                self.hits += 1;
                id
            }
            None => {
                self.misses += 1;
                let id = self.graphs.len() as MolId;
                if let Some(screen) = &mut self.screen {
                    screen.add(id, graph);
                }
                self.graphs.push(graph.clone());
                self.index.insert(key, id);
                id
            }
        };
        self.exact.insert(exact, id);
        id
    }

    /// The stored representative for `id`.
    pub fn graph(&self, id: MolId) -> &LabeledGraph {
        &self.graphs[id as usize]
    }

    /// Looks up a molecule's id without interning it and without touching
    /// the hit/miss counters (an administrative probe, not traffic).
    pub fn lookup(&self, graph: &LabeledGraph) -> Option<MolId> {
        if let Some(&id) = self.exact.get(&exact_key(graph)) {
            return Some(id);
        }
        self.index.get(&canonical_code(graph)).copied()
    }

    /// Forgets the interning entries for `id`: later submissions of the
    /// molecule (or any isomorphic variant) intern a *fresh* id. The
    /// stored representative stays resolvable through [`MolStore::graph`]
    /// so ids held by in-flight requests remain valid. Returns whether
    /// the id had any live index entry. Callers that retire molecules
    /// must bump the shard epoch (see `Server::remove_molecule`) so stale
    /// cached results keyed to the old corpus become unreachable.
    pub fn retire(&mut self, id: MolId) -> bool {
        // Tombstone first: a retired molecule must stop appearing in any
        // corpus-level screen immediately (the per-molecule screen keeps
        // letting the id survive, so in-flight holders still execute
        // exactly as with the index off).
        if let Some(screen) = &mut self.screen {
            screen.remove(id);
        }
        let before = self.exact.len() + self.index.len();
        // sigmo-lint: allow(nondet-collection-iter) — set-membership
        // retain; the surviving map is the same whatever order entries
        // are visited in, and nothing here feeds a report.
        self.exact.retain(|_, v| *v != id);
        // sigmo-lint: allow(nondet-collection-iter) — same order-free
        // retain over the canonical index.
        self.index.retain(|_, v| *v != id);
        before != self.exact.len() + self.index.len()
    }

    /// Number of distinct isomorphism classes stored.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// `(hits, misses)` across all interns.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

struct PlanEntry {
    queries: Vec<LabeledGraph>,
    plan: Arc<QueryPlan>,
}

/// Query-plan cache keyed by the ordered query canonical codes.
#[derive(Default)]
pub struct PlanCache {
    index: HashMap<Vec<u8>, PlanId>,
    entries: Vec<PlanEntry>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The order-sensitive cache key for a query batch: each query's
    /// canonical code, length-prefixed so adjacent codes cannot alias.
    pub fn key(queries: &[LabeledGraph]) -> Vec<u8> {
        let mut key = Vec::new();
        for q in queries {
            let code = canonical_code(q);
            key.extend_from_slice(&(code.len() as u64).to_le_bytes());
            key.extend_from_slice(&code);
        }
        key
    }

    /// Interns a query batch, building its [`QueryPlan`] on first sight.
    pub fn intern(&mut self, queries: &[LabeledGraph], config: &EngineConfig) -> PlanId {
        let key = Self::key(queries);
        if let Some(&id) = self.index.get(&key) {
            self.hits += 1;
            return id;
        }
        self.misses += 1;
        let id = self.entries.len();
        self.entries.push(PlanEntry {
            queries: queries.to_vec(),
            plan: Arc::new(QueryPlan::build(queries, config)),
        });
        self.index.insert(key, id);
        id
    }

    /// The cached plan for `id`.
    pub fn plan(&self, id: PlanId) -> Arc<QueryPlan> {
        Arc::clone(&self.entries[id].plan)
    }

    /// The query batch `id` was interned with (the no-cache ablation
    /// rebuilds plans from these).
    pub fn queries(&self, id: PlanId) -> &[LabeledGraph] {
        &self.entries[id].queries
    }

    /// Number of distinct plans interned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plan has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` across all interns.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// One molecule's outcome against one plan in one mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MolOutcome {
    /// `(query index, matches)` for every query with ≥ 1 match, in plan
    /// query order.
    pub pairs: Vec<(usize, u64)>,
    /// True when the molecule's counts are a sound lower bound rather
    /// than a total (its work-group tripped a budget, or its shard was
    /// unavailable).
    pub truncated: bool,
    /// True when the molecule's owning shard exhausted every replica
    /// (sharded serving's degraded path): `pairs` is empty, the zero
    /// counts are a sound lower bound, and the outcome is never cached.
    pub unavailable: bool,
}

impl MolOutcome {
    /// Sum of the per-query counts.
    pub fn total(&self) -> u64 {
        self.pairs.iter().map(|&(_, n)| n).sum()
    }
}

/// FIFO-evicting cache of per-molecule outcomes keyed by
/// `(plan, molecule, mode, shard epoch)`. The epoch — the corpus
/// partition version — is part of the key so a repartition invalidates
/// every older entry wholesale: lookups under the new epoch miss, and the
/// stale entries age out through normal FIFO eviction.
pub struct ResultCache {
    map: HashMap<(PlanId, MolId, MatchMode, u64), Arc<MolOutcome>>,
    order: VecDeque<(PlanId, MolId, MatchMode, u64)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` outcomes (0 disables
    /// insertion entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up an outcome under the given shard epoch, counting the hit
    /// or miss.
    pub fn get(
        &mut self,
        plan: PlanId,
        mol: MolId,
        mode: MatchMode,
        epoch: u64,
    ) -> Option<Arc<MolOutcome>> {
        match self.map.get(&(plan, mol, mode, epoch)) {
            Some(outcome) => {
                self.hits += 1;
                Some(Arc::clone(outcome))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an outcome under the given shard epoch, evicting the
    /// oldest entry when full.
    pub fn insert(
        &mut self,
        plan: PlanId,
        mol: MolId,
        mode: MatchMode,
        epoch: u64,
        outcome: Arc<MolOutcome>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let key = (plan, mol, mode, epoch);
        if self.map.insert(key, outcome).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` across all lookups.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigmo_core::engine::EngineConfig;

    fn chain(labels: &[u8]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (1..labels.len() as u32).map(|i| (i - 1, i)).collect();
        LabeledGraph::from_edges(labels, &edges).unwrap()
    }

    #[test]
    fn mol_store_collapses_isomorphic_variants() {
        let mut store = MolStore::new();
        let a = chain(&[1, 3, 1]);
        // Same chain, nodes listed in reverse.
        let b = LabeledGraph::from_edges(&[1, 3, 1], &[(2, 1), (1, 0)]).unwrap();
        let c = chain(&[1, 3, 3]);
        let ia = store.intern(&a);
        let ib = store.intern(&b);
        let ic = store.intern(&c);
        assert_eq!(ia, ib, "isomorphic variants share an id");
        assert_ne!(ia, ic);
        assert_eq!(store.len(), 2);
        assert_eq!(store.counters(), (1, 2));
        // The representative is the first-seen variant.
        assert_eq!(store.graph(ia), &a);
    }

    #[test]
    fn plan_cache_is_order_sensitive() {
        let cfg = EngineConfig::default();
        let q1 = chain(&[1, 3]);
        let q2 = chain(&[1, 2]);
        let mut cache = PlanCache::new();
        let ab = cache.intern(&[q1.clone(), q2.clone()], &cfg);
        let ba = cache.intern(&[q2.clone(), q1.clone()], &cfg);
        let ab2 = cache.intern(&[q1, q2], &cfg);
        assert_ne!(ab, ba, "query order is part of the key");
        assert_eq!(ab, ab2);
        assert_eq!(cache.counters(), (1, 2));
    }

    #[test]
    fn result_cache_evicts_fifo() {
        let mut cache = ResultCache::new(2);
        let out = Arc::new(MolOutcome {
            pairs: vec![(0, 1)],
            truncated: false,
            unavailable: false,
        });
        cache.insert(0, 0, MatchMode::FindAll, 0, Arc::clone(&out));
        cache.insert(0, 1, MatchMode::FindAll, 0, Arc::clone(&out));
        cache.insert(0, 2, MatchMode::FindAll, 0, Arc::clone(&out));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get(0, 0, MatchMode::FindAll, 0).is_none(),
            "oldest evicted"
        );
        assert!(cache.get(0, 2, MatchMode::FindAll, 0).is_some());
        // Same molecule, different mode is a distinct key.
        assert!(cache.get(0, 2, MatchMode::FindFirst, 0).is_none());
    }

    #[test]
    fn result_cache_epoch_partitions_the_key_space() {
        let mut cache = ResultCache::new(8);
        let out = Arc::new(MolOutcome {
            pairs: vec![(1, 7)],
            truncated: false,
            unavailable: false,
        });
        cache.insert(0, 0, MatchMode::FindAll, 0, Arc::clone(&out));
        // A repartition bumps the epoch: the old entry must not serve.
        assert!(cache.get(0, 0, MatchMode::FindAll, 1).is_none());
        assert!(cache.get(0, 0, MatchMode::FindAll, 0).is_some());
        cache.insert(0, 0, MatchMode::FindAll, 1, Arc::clone(&out));
        assert_eq!(cache.len(), 2, "epochs are distinct keys");
    }

    #[test]
    fn mol_store_retire_forgets_interning_but_keeps_the_graph() {
        let mut store = MolStore::new();
        let a = chain(&[1, 3, 1]);
        let b = LabeledGraph::from_edges(&[1, 3, 1], &[(2, 1), (1, 0)]).unwrap();
        let ia = store.intern(&a);
        assert_eq!(store.lookup(&a), Some(ia));
        assert_eq!(store.lookup(&b), Some(ia), "canonical lookup");
        assert!(store.retire(ia));
        assert!(!store.retire(ia), "second retire is a no-op");
        assert_eq!(store.lookup(&a), None, "retired entries are forgotten");
        assert_eq!(store.graph(ia), &a, "the representative stays valid");
        // Re-interning after retirement mints a fresh id.
        let ia2 = store.intern(&a);
        assert_ne!(ia, ia2);
    }
}
