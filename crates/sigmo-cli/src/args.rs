//! Hand-rolled argument parsing for the `sigmo` CLI.

use std::collections::BTreeMap;
use std::fmt;

/// The selected subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Batched Find All matching.
    Match,
    /// Find First screening with hit counts.
    Screen,
    /// Synthetic library generation.
    Generate,
    /// Dataset statistics.
    Info,
    /// Deterministic serving soak over a seeded workload.
    Serve,
    /// Serve a workload and verify every request against the unbatched
    /// oracle.
    Replay,
    /// Build a persistent signature index over a molecule file.
    IndexBuild,
    /// Print the header and section statistics of a persisted index.
    IndexStat,
}

impl Command {
    fn from_str(s: &str) -> Option<Command> {
        match s {
            "match" => Some(Command::Match),
            "screen" => Some(Command::Screen),
            "generate" => Some(Command::Generate),
            "info" => Some(Command::Info),
            "serve" => Some(Command::Serve),
            "replay" => Some(Command::Replay),
            _ => None,
        }
    }
}

/// Parsed command line: the subcommand plus `--flag value` options.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// Subcommand.
    pub command: Command,
    options: BTreeMap<String, String>,
}

/// Argument-parsing errors with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand supplied.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A `--flag` without a value, or a stray positional token.
    Malformed(String),
    /// `index` without a `build`/`stat` action, or an unknown action.
    BadIndexAction(Option<String>),
    /// A flag appeared twice.
    Duplicate(String),
    /// A required flag is absent.
    MissingOption(&'static str),
    /// A value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => {
                write!(
                    f,
                    "usage: sigmo <match|screen|generate|info|serve|replay|index> [--flag value]..."
                )
            }
            ArgError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            ArgError::BadIndexAction(a) => match a {
                Some(a) => write!(f, "unknown index action {a:?} (expected build or stat)"),
                None => write!(f, "usage: sigmo index <build|stat> [--flag value]..."),
            },
            ArgError::Malformed(t) => write!(f, "malformed argument {t:?} (expected --flag value)"),
            ArgError::Duplicate(fl) => write!(f, "flag --{fl} given twice"),
            ArgError::MissingOption(fl) => write!(f, "required flag --{fl} missing"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses `args` (without the program name).
pub fn parse_args(args: &[String]) -> Result<ParsedArgs, ArgError> {
    let mut it = args.iter();
    let cmd = it.next().ok_or(ArgError::MissingCommand)?;
    // `index` is the one two-token command: an action word follows it.
    let command = if cmd == "index" {
        match it.next().map(String::as_str) {
            Some("build") => Command::IndexBuild,
            Some("stat") => Command::IndexStat,
            other => return Err(ArgError::BadIndexAction(other.map(str::to_string))),
        }
    } else {
        Command::from_str(cmd).ok_or_else(|| ArgError::UnknownCommand(cmd.clone()))?
    };
    let mut options = BTreeMap::new();
    while let Some(tok) = it.next() {
        let flag = tok
            .strip_prefix("--")
            .ok_or_else(|| ArgError::Malformed(tok.clone()))?;
        let value = it.next().ok_or_else(|| ArgError::Malformed(tok.clone()))?;
        if options.insert(flag.to_string(), value.clone()).is_some() {
            return Err(ArgError::Duplicate(flag.to_string()));
        }
    }
    Ok(ParsedArgs { command, options })
}

impl ParsedArgs {
    /// A string option.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.get(flag).ok_or(ArgError::MissingOption(flag))
    }

    /// An optional parsed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse_args(&strs(&["match", "--queries", "q.smi", "--data", "d.sdf"])).unwrap();
        assert_eq!(a.command, Command::Match);
        assert_eq!(a.get("queries"), Some("q.smi"));
        assert_eq!(a.require("data").unwrap(), "d.sdf");
    }

    #[test]
    fn rejects_missing_and_unknown_commands() {
        assert_eq!(parse_args(&[]), Err(ArgError::MissingCommand));
        assert!(matches!(
            parse_args(&strs(&["frobnicate"])),
            Err(ArgError::UnknownCommand(_))
        ));
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(matches!(
            parse_args(&strs(&["match", "positional"])),
            Err(ArgError::Malformed(_))
        ));
        assert!(matches!(
            parse_args(&strs(&["match", "--queries"])),
            Err(ArgError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            parse_args(&strs(&["match", "--seed", "1", "--seed", "2"])),
            Err(ArgError::Duplicate("seed".into()))
        );
    }

    #[test]
    fn parsed_option_with_default() {
        let a = parse_args(&strs(&["generate", "--count", "42"])).unwrap();
        assert_eq!(a.get_parsed("count", 10usize, "an integer").unwrap(), 42);
        assert_eq!(a.get_parsed("seed", 7u64, "an integer").unwrap(), 7);
        let bad = parse_args(&strs(&["generate", "--count", "xx"])).unwrap();
        assert!(bad.get_parsed("count", 1usize, "an integer").is_err());
    }

    #[test]
    fn parses_index_actions() {
        let a = parse_args(&strs(&["index", "build", "--data", "d.smi"])).unwrap();
        assert_eq!(a.command, Command::IndexBuild);
        assert_eq!(a.get("data"), Some("d.smi"));
        let a = parse_args(&strs(&["index", "stat", "--index", "c.sigmoidx"])).unwrap();
        assert_eq!(a.command, Command::IndexStat);
        assert_eq!(
            parse_args(&strs(&["index"])),
            Err(ArgError::BadIndexAction(None))
        );
        assert_eq!(
            parse_args(&strs(&["index", "frobnicate"])),
            Err(ArgError::BadIndexAction(Some("frobnicate".into())))
        );
    }

    #[test]
    fn missing_required_flag() {
        let a = parse_args(&strs(&["info"])).unwrap();
        assert_eq!(a.require("data"), Err(ArgError::MissingOption("data")));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ArgError::MissingCommand.to_string().contains("usage"));
        assert!(ArgError::MissingOption("data")
            .to_string()
            .contains("--data"));
    }

    impl PartialEq for ParsedArgs {
        fn eq(&self, other: &Self) -> bool {
            self.command == other.command && self.options == other.options
        }
    }
}
