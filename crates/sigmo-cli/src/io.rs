//! File I/O for the CLI: `.smi` (SMILES-per-line) and `.sdf` formats.

use sigmo_graph::LabeledGraph;
use sigmo_mol::{
    parse_sdf, parse_smarts, parse_smiles, parse_smiles_heavy, write_sdf, write_smiles, Molecule,
};
use std::fmt;
use std::path::Path;

/// I/O errors with file context.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Fs(std::io::Error),
    /// A record failed to parse.
    Parse {
        /// File the record came from.
        file: String,
        /// 1-based record number (line for .smi, block for .sdf).
        record: usize,
        /// Parser message.
        message: String,
    },
    /// Unrecognized file extension.
    UnknownFormat(String),
    /// The file parsed but contained no molecules.
    Empty(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "I/O error: {e}"),
            IoError::Parse {
                file,
                record,
                message,
            } => {
                write!(f, "{file}: record {record}: {message}")
            }
            IoError::UnknownFormat(p) => {
                write!(f, "{p}: unknown format (expected .smi or .sdf)")
            }
            IoError::Empty(p) => write!(f, "{p}: no molecules found"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

/// A named molecule loaded from disk.
#[derive(Debug, Clone)]
pub struct NamedMolecule {
    /// Display name (from the .smi name column or SDF title; falls back to
    /// `file#index`).
    pub name: String,
    /// The molecule.
    pub molecule: Molecule,
}

/// Loads molecules from `.smi` or `.sdf`. When `heavy_only` is set, SMILES
/// records skip implicit-hydrogen saturation (the usual choice for *query*
/// files, where hydrogens are left unconstrained).
pub fn load_molecules(path: &str, heavy_only: bool) -> Result<Vec<NamedMolecule>, IoError> {
    let text = std::fs::read_to_string(path)?;
    parse_molecules(path, &text, heavy_only)
}

/// Parses molecule text by extension (exposed for tests).
pub fn parse_molecules(
    path: &str,
    text: &str,
    heavy_only: bool,
) -> Result<Vec<NamedMolecule>, IoError> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let out = match ext {
        "smi" | "smiles" => {
            let mut out = Vec::new();
            for (i, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let (smiles, name) = match line.split_once(char::is_whitespace) {
                    Some((s, n)) => (s, n.trim().to_string()),
                    None => (line, format!("{path}#{}", i + 1)),
                };
                let parsed = if heavy_only {
                    parse_smiles_heavy(smiles)
                } else {
                    parse_smiles(smiles)
                };
                let molecule = parsed.map_err(|e| IoError::Parse {
                    file: path.to_string(),
                    record: i + 1,
                    message: e.to_string(),
                })?;
                out.push(NamedMolecule { name, molecule });
            }
            out
        }
        "sdf" | "mol" => parse_sdf(text)
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.map(|molecule| NamedMolecule {
                    name: format!("{path}#{}", i + 1),
                    molecule,
                })
                .map_err(|e| IoError::Parse {
                    file: path.to_string(),
                    record: i + 1,
                    message: e.to_string(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
        other => return Err(IoError::UnknownFormat(format!("{path} (.{other})"))),
    };
    if out.is_empty() {
        return Err(IoError::Empty(path.to_string()));
    }
    Ok(out)
}

/// A named query pattern graph (from `.smi`, `.sdf`, or `.smarts`).
#[derive(Debug, Clone)]
pub struct NamedQueryGraph {
    /// Display name.
    pub name: String,
    /// The pattern graph.
    pub graph: LabeledGraph,
}

/// Loads query patterns: `.smarts` files hold one SMARTS per line
/// (wildcards supported); `.smi`/`.sdf` files are parsed as heavy-atom
/// molecules.
pub fn load_query_graphs(path: &str) -> Result<Vec<NamedQueryGraph>, IoError> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    if matches!(ext, "smarts" | "sma") {
        let text = std::fs::read_to_string(path)?;
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (pattern, name) = match line.split_once(char::is_whitespace) {
                Some((p, n)) => (p, n.trim().to_string()),
                None => (line, format!("{path}#{}", i + 1)),
            };
            let graph = parse_smarts(pattern).map_err(|e| IoError::Parse {
                file: path.to_string(),
                record: i + 1,
                message: e.to_string(),
            })?;
            out.push(NamedQueryGraph { name, graph });
        }
        if out.is_empty() {
            return Err(IoError::Empty(path.to_string()));
        }
        Ok(out)
    } else {
        Ok(load_molecules(path, true)?
            .into_iter()
            .map(|m| NamedQueryGraph {
                name: m.name,
                graph: m.molecule.to_labeled_graph(),
            })
            .collect())
    }
}

/// Serializes molecules for `generate --output`: `.smi` or `.sdf` by
/// extension.
pub fn serialize_molecules(path: &str, mols: &[NamedMolecule]) -> Result<String, IoError> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "smi" | "smiles" => Ok(mols
            .iter()
            .map(|m| format!("{} {}\n", write_smiles(&m.molecule), m.name))
            .collect()),
        "sdf" | "mol" => Ok(write_sdf(
            mols.iter().map(|m| (m.name.as_str(), &m.molecule)),
        )),
        other => Err(IoError::UnknownFormat(format!("{path} (.{other})"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smi_parsing_with_names_and_comments() {
        let text = "# library\nCCO ethanol\nCC(=O)O acetic-acid\n\nC1CCCCC1\n";
        let mols = parse_molecules("lib.smi", text, false).unwrap();
        assert_eq!(mols.len(), 3);
        assert_eq!(mols[0].name, "ethanol");
        assert_eq!(mols[0].molecule.formula(), "C2H6O");
        assert_eq!(mols[2].name, "lib.smi#5");
    }

    #[test]
    fn heavy_only_skips_hydrogens() {
        let mols = parse_molecules("q.smi", "C=O carbonyl\n", true).unwrap();
        assert_eq!(mols[0].molecule.num_atoms(), 2);
    }

    #[test]
    fn parse_error_carries_location() {
        let err = parse_molecules("x.smi", "CCO\nC(C)(C)(C)(C)C bad\n", false).unwrap_err();
        match err {
            IoError::Parse { record, .. } => assert_eq!(record, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_extension_rejected() {
        assert!(matches!(
            parse_molecules("x.xyz", "CCO", false),
            Err(IoError::UnknownFormat(_))
        ));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(
            parse_molecules("x.smi", "# nothing\n", false),
            Err(IoError::Empty(_))
        ));
    }

    #[test]
    fn sdf_round_trip_through_serialize() {
        let mols = parse_molecules("a.smi", "CCO ethanol\nCC ethane\n", false).unwrap();
        let sdf = serialize_molecules("out.sdf", &mols).unwrap();
        let back = parse_molecules("out.sdf", &sdf, false).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].molecule.formula(), "C2H6O");
    }

    #[test]
    fn smarts_query_loading() {
        let dir = std::env::temp_dir().join("sigmo-cli-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.smarts");
        std::fs::write(&path, "C(=O)~* acyl\n*~* anything\n").unwrap();
        let qs = load_query_graphs(path.to_str().unwrap()).unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].name, "acyl");
        assert_eq!(qs[0].graph.num_nodes(), 3);
        assert_eq!(qs[1].graph.label(0), sigmo_graph::WILDCARD_LABEL);
    }

    #[test]
    fn smi_queries_load_as_heavy_graphs() {
        let dir = std::env::temp_dir().join("sigmo-cli-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.smi");
        std::fs::write(&path, "C=O carbonyl\n").unwrap();
        let qs = load_query_graphs(path.to_str().unwrap()).unwrap();
        assert_eq!(qs[0].graph.num_nodes(), 2);
    }

    #[test]
    fn smi_serialization_re_parses() {
        let mols = parse_molecules("a.smi", "CC(=O)O acid\n", false).unwrap();
        let smi = serialize_molecules("out.smi", &mols).unwrap();
        let back = parse_molecules("out.smi", &smi, false).unwrap();
        assert_eq!(back[0].molecule.formula(), "C2H4O2");
        assert_eq!(back[0].name, "acid");
    }
}
