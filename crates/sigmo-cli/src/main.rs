//! The `sigmo` command-line tool. See `sigmo_cli` (lib.rs) for the
//! subcommand reference.

use sigmo_cli::{parse_args, run_command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sigmo: {e}");
            std::process::exit(2);
        }
    };
    match run_command(&parsed) {
        Ok(output) => {
            for (path, contents) in &output.files {
                if let Err(e) = std::fs::write(path, contents) {
                    eprintln!("sigmo: writing {path}: {e}");
                    std::process::exit(1);
                }
            }
            print!("{}", output.stdout);
        }
        Err(e) => {
            eprintln!("sigmo: {e}");
            std::process::exit(1);
        }
    }
}
