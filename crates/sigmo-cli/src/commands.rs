//! Subcommand implementations. Each returns a [`CommandOutput`] so the
//! logic is unit-testable without spawning processes.

use crate::args::{ArgError, Command, ParsedArgs};
use crate::io::{load_molecules, load_query_graphs, serialize_molecules, IoError, NamedMolecule};
use sigmo_cluster::FaultPlan;
use sigmo_core::{Engine, EngineConfig, Governor, JoinStrategy, MatchMode, RunBudget};
use sigmo_device::{DeviceProfile, Queue};
use sigmo_graph::LabeledGraph;
use sigmo_mol::{descriptors, GeneratorConfig, MoleculeGenerator};
use sigmo_serve::{
    generate_workload, oracle_replay, run_soak, served_outcome, FrozenIndex, IndexConfig, MolStore,
    ServeConfig, Server, ShardConfig, WorkloadConfig,
};
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// Result of a command: text for stdout plus optional file payloads.
#[derive(Debug, Default)]
pub struct CommandOutput {
    /// Text printed to stdout.
    pub stdout: String,
    /// Files to write: `(path, contents)` — bytes, so binary index files
    /// and text formats share one channel.
    pub files: Vec<(String, Vec<u8>)>,
}

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Argument problems.
    Args(ArgError),
    /// File problems.
    Io(IoError),
    /// Signature-index problems (bad file, schema mismatch, preload into
    /// a non-empty server).
    Index(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Index(e) => write!(f, "index: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<IoError> for CliError {
    fn from(e: IoError) -> Self {
        CliError::Io(e)
    }
}

fn join_strategy(args: &ParsedArgs) -> Result<JoinStrategy, ArgError> {
    match args.get("join-strategy") {
        None => Ok(JoinStrategy::default()),
        Some("dfs") => Ok(JoinStrategy::Dfs),
        Some("bfs") => Ok(JoinStrategy::Bfs),
        Some("adaptive") => Ok(JoinStrategy::Adaptive),
        Some(v) => Err(ArgError::BadValue {
            flag: "join-strategy".to_string(),
            value: v.to_string(),
            expected: "dfs, bfs, or adaptive",
        }),
    }
}

fn engine_config(args: &ParsedArgs, mode: MatchMode) -> Result<EngineConfig, ArgError> {
    Ok(EngineConfig {
        refinement_iterations: args.get_parsed("iterations", 6usize, "an integer ≥ 1")?,
        mode,
        induced: args.get_parsed("induced", false, "true or false")?,
        collect_limit: match args.get("show") {
            Some(_) => Some(args.get_parsed("show", 10usize, "an integer")?),
            None => None,
        },
        join_strategy: join_strategy(args)?,
        ..Default::default()
    })
}

fn to_graphs(mols: &[NamedMolecule]) -> Vec<LabeledGraph> {
    mols.iter().map(|m| m.molecule.to_labeled_graph()).collect()
}

/// Builds the run budget from `--deadline-ms`, `--step-budget` and
/// `--max-embeddings`. All three are optional; absent flags leave that
/// axis unlimited, and a fully absent budget runs bit-identically to an
/// unbudgeted engine.
fn run_budget(args: &ParsedArgs) -> Result<RunBudget, ArgError> {
    let mut budget = RunBudget::none();
    if args.get("deadline-ms").is_some() {
        let ms = args.get_parsed("deadline-ms", 0u64, "milliseconds (an integer)")?;
        budget.deadline = Some(Duration::from_millis(ms));
    }
    if args.get("step-budget").is_some() {
        budget.max_join_steps = Some(args.get_parsed("step-budget", 0u64, "an integer")?);
    }
    if args.get("max-embeddings").is_some() {
        budget.max_embeddings = Some(args.get_parsed("max-embeddings", 0u64, "an integer")?);
    }
    Ok(budget)
}

/// One status line for a (possibly truncated) report: `status: complete`
/// or `status: truncated (reason)` with the partial-result caveat.
fn status_line(out: &mut String, completion: &sigmo_core::Completion) {
    if completion.is_complete() {
        writeln!(out, "status: complete").unwrap();
    } else {
        writeln!(
            out,
            "status: {completion} — counts below are a sound partial result \
             (every reported match is real; the run stopped early)"
        )
        .unwrap();
    }
}

/// Dispatches a parsed command line.
pub fn run_command(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    match args.command {
        Command::Match => cmd_match(args),
        Command::Screen => cmd_screen(args),
        Command::Generate => cmd_generate(args),
        Command::Info => cmd_info(args),
        Command::Serve => cmd_serve(args),
        Command::Replay => cmd_replay(args),
        Command::IndexBuild => cmd_index_build(args),
        Command::IndexStat => cmd_index_stat(args),
    }
}

/// Builds the serving and workload configurations shared by `serve` and
/// `replay` from the common flag set.
fn serve_setup(args: &ParsedArgs) -> Result<(ServeConfig, WorkloadConfig), ArgError> {
    let defaults = WorkloadConfig::default();
    let workload = WorkloadConfig {
        requests: args.get_parsed("requests", defaults.requests, "an integer ≥ 1")?,
        seed: args.get_parsed("seed", defaults.seed, "an integer")?,
        mol_pool: args.get_parsed("mol-pool", defaults.mol_pool, "an integer ≥ 1")?,
        query_sets: args.get_parsed("query-sets", defaults.query_sets, "an integer ≥ 1")?,
        queries_per_set: args.get_parsed(
            "queries-per-set",
            defaults.queries_per_set,
            "an integer ≥ 1",
        )?,
        max_request_molecules: args.get_parsed(
            "request-mols",
            defaults.max_request_molecules,
            "an integer ≥ 1",
        )?,
        mean_interarrival: args.get_parsed(
            "interarrival",
            defaults.mean_interarrival,
            "ticks (an integer)",
        )?,
        find_first_pct: args.get_parsed(
            "find-first-pct",
            defaults.find_first_pct,
            "a percentage 0..=100",
        )?,
        pool_skew: args.get_parsed("pool-skew", defaults.pool_skew, "an integer ≥ 0")?,
    };
    let serve_defaults = ServeConfig::default();
    let config = ServeConfig {
        budget: run_budget(args)?,
        queue_capacity: args.get_parsed(
            "queue-capacity",
            serve_defaults.queue_capacity,
            "an integer ≥ 1",
        )?,
        max_batch_requests: args.get_parsed(
            "batch-requests",
            serve_defaults.max_batch_requests,
            "an integer ≥ 1",
        )?,
        caching: args.get_parsed("cache", true, "true or false")?,
        sharding: shard_setup(args)?,
        index: if args.get_parsed("no-index", false, "true or false")? {
            None
        } else {
            Some(IndexConfig {
                radius: args.get_parsed(
                    "index-radius",
                    IndexConfig::default().radius,
                    "an integer ≥ 0",
                )?,
            })
        },
        ..serve_defaults
    };
    Ok((config, workload))
}

/// Bulk-loads a `--corpus <file.smi>` into the server's standing corpus
/// when the flag is given, appending the load summary (and the
/// deterministic quarantine report) to `out`.
fn preload_corpus(
    args: &ParsedArgs,
    server: &mut Server,
    out: &mut String,
) -> Result<(), CliError> {
    let Some(path) = args.get("corpus") else {
        return Ok(());
    };
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(IoError::Fs(e)))?;
    let load = server.preload_corpus(&text);
    quarantine_report(out, &load.quarantined);
    writeln!(
        out,
        "corpus: {} molecules ({} classes) from {path}",
        load.loaded, load.classes
    )
    .unwrap();
    Ok(())
}

/// Loads a persisted `--index` file when the flag is given.
fn load_frozen(args: &ParsedArgs) -> Result<Option<FrozenIndex>, CliError> {
    match args.get("index") {
        None => Ok(None),
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| CliError::Io(IoError::Fs(e)))?;
            let frozen =
                FrozenIndex::open(bytes).map_err(|e| CliError::Index(format!("{path}: {e}")))?;
            Ok(Some(frozen))
        }
    }
}

/// Builds the sharded-tier configuration from `--shards` and friends.
/// `--shards 0` (the default) keeps the single-node serving path.
fn shard_setup(args: &ParsedArgs) -> Result<Option<ShardConfig>, ArgError> {
    let shards = args.get_parsed("shards", 0usize, "an integer ≥ 0")?;
    if shards == 0 {
        return Ok(None);
    }
    let replicas = args.get_parsed("replicas", 2usize.min(shards), "an integer ≥ 1")?;
    if !(1..=shards).contains(&replicas) {
        return Err(ArgError::BadValue {
            flag: "replicas".to_string(),
            value: replicas.to_string(),
            expected: "1..=shards replicas",
        });
    }
    let crashes = args.get_parsed("crashes", 0usize, "an integer")?;
    let stragglers = args.get_parsed("stragglers", 0usize, "an integer")?;
    let slowdown = args.get_parsed("slowdown", 4.0f64, "a factor ≥ 1.0")?;
    // Crashes claim the low ranks (clamped so one rank stays healthy);
    // stragglers claim the high ranks, skipping corpses. Deterministic by
    // construction — the seed only drives ownership and transient blips.
    let mut fault = FaultPlan::none(shards);
    for r in 0..crashes.min(shards.saturating_sub(1)) {
        fault.crashed.insert(r);
    }
    for k in 0..stragglers.min(shards) {
        let r = shards - 1 - k;
        if !fault.crashed.contains(&r) {
            fault.stragglers.insert(r, slowdown.max(1.0));
        }
    }
    let mut config = ShardConfig::new(shards, replicas)
        .with_fault(fault)
        .with_transient_pct(args.get_parsed("transient-pct", 0u64, "a percentage 0..=100")?);
    config.fault_seed = args.get_parsed("fault-seed", config.fault_seed, "an integer")?;
    config.work_stealing = args.get_parsed("steal", true, "true or false")?;
    Ok(Some(config))
}

/// Renders the sharded tier's dispatch/retry/steal summary, including the
/// hottest shard's deepest primary backlog — the work-stealing signal.
fn shard_summary(out: &mut String, stats: &[sigmo_serve::ShardStats]) {
    let retries: u64 = stats.iter().map(|s| s.retries).sum();
    let steals: u64 = stats.iter().map(|s| s.steals).sum();
    let degraded: u64 = stats.iter().map(|s| s.degraded_slices).sum();
    let dispatches: u64 = stats.iter().map(|s| s.dispatches).sum();
    writeln!(
        out,
        "shards: {} — {} dispatches, {} retries, {} steals, {} degraded slices",
        stats.len(),
        dispatches,
        retries,
        steals,
        degraded
    )
    .unwrap();
    if let Some((hot, s)) = stats
        .iter()
        .enumerate()
        .max_by_key(|(i, s)| (s.max_queue_depth, std::cmp::Reverse(*i)))
    {
        writeln!(
            out,
            "hot shard {}: max queue depth {} ticks, {} molecules executed",
            hot, s.max_queue_depth, s.executed_molecules
        )
        .unwrap();
    }
}

/// Renders latency/cache/throughput summary lines shared by `serve` and
/// `replay`.
fn serve_summary(
    out: &mut String,
    soak: &sigmo_serve::SoakReport,
    stats: &sigmo_serve::ServeStats,
) {
    let total_matches: u64 = soak.entries.iter().map(|e| e.report.total_matches).sum();
    let unavailable = soak
        .entries
        .iter()
        .filter(|e| {
            e.report.completion
                == sigmo_core::Completion::Truncated(sigmo_core::TruncationReason::ShardUnavailable)
        })
        .count();
    let truncated = soak
        .entries
        .iter()
        .filter(|e| !e.report.completion.is_complete())
        .count()
        - unavailable;
    writeln!(
        out,
        "served {} requests ({} rejected) in {} ticks over {} steps",
        soak.entries.len(),
        soak.rejected.len(),
        soak.final_tick,
        soak.steps
    )
    .unwrap();
    writeln!(out, "total matches: {total_matches}").unwrap();
    if truncated > 0 {
        writeln!(
            out,
            "truncated requests: {truncated} (step-budget partials; sound lower bounds)"
        )
        .unwrap();
    }
    if unavailable > 0 {
        writeln!(
            out,
            "degraded requests: {unavailable} (shard unavailable; zero-count lower bounds)"
        )
        .unwrap();
    }
    let mut lat = soak.latencies();
    lat.sort_unstable();
    if !lat.is_empty() {
        let p95 = lat[((lat.len() * 95) / 100).min(lat.len() - 1)];
        writeln!(
            out,
            "latency ticks: p50 {} p95 {} max {}",
            lat[lat.len() / 2],
            p95,
            lat[lat.len() - 1]
        )
        .unwrap();
    }
    writeln!(
        out,
        "cache hits/misses: plan {}/{} molecule {}/{} result {}/{}",
        stats.plan_hits,
        stats.plan_misses,
        stats.mol_hits,
        stats.mol_misses,
        stats.result_hits,
        stats.result_misses
    )
    .unwrap();
    writeln!(
        out,
        "executed molecules: {} across {} micro-batches",
        stats.executed_molecules, stats.batches
    )
    .unwrap();
    if stats.index_screened > 0 {
        writeln!(
            out,
            "index screening: {} screened, {} pruned ({:.1}%)",
            stats.index_screened,
            stats.index_pruned,
            100.0 * stats.index_pruned as f64 / stats.index_screened as f64
        )
        .unwrap();
    }
}

fn cmd_serve(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let (config, workload) = serve_setup(args)?;
    let trace = generate_workload(&workload);
    let mut server = Server::new(config, Queue::new(DeviceProfile::host()));
    if let Some(frozen) = load_frozen(args)? {
        server.preload_index(&frozen).map_err(CliError::Index)?;
    }
    let mut out = String::new();
    preload_corpus(args, &mut server, &mut out)?;
    let soak = run_soak(&mut server, &trace);
    serve_summary(&mut out, &soak, &server.stats());
    if let Some(stats) = server.shard_stats() {
        shard_summary(&mut out, stats);
    }
    Ok(CommandOutput {
        stdout: out,
        files: Vec::new(),
    })
}

fn cmd_replay(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let (config, workload) = serve_setup(args)?;
    let trace = generate_workload(&workload);
    let mut server = Server::new(config.clone(), Queue::new(DeviceProfile::host()));
    if let Some(frozen) = load_frozen(args)? {
        server.preload_index(&frozen).map_err(CliError::Index)?;
    }
    let mut out = String::new();
    preload_corpus(args, &mut server, &mut out)?;
    let soak = run_soak(&mut server, &trace);
    let queue = Queue::new(DeviceProfile::host());
    let mut mismatches = 0usize;
    let mut degraded = 0usize;
    for entry in &soak.entries {
        if entry.report.completion
            == sigmo_core::Completion::Truncated(sigmo_core::TruncationReason::ShardUnavailable)
        {
            // Every replica of some shard was exhausted: the served zero
            // counts are a declared lower bound, not an oracle match.
            degraded += 1;
            continue;
        }
        let oracle = oracle_replay(&config, &trace[entry.trace_index].request, &queue);
        if served_outcome(&entry.report) != oracle {
            mismatches += 1;
            writeln!(
                out,
                "MISMATCH request {}: served {} matches, oracle {}",
                entry.trace_index, entry.report.total_matches, oracle.total_matches
            )
            .unwrap();
        }
    }
    if degraded > 0 {
        writeln!(
            out,
            "degraded requests: {degraded} (shard unavailable; zero-count lower bounds, \
             excluded from oracle comparison)"
        )
        .unwrap();
    }
    writeln!(
        out,
        "replay: {}/{} requests bit-identical to the unbatched oracle",
        soak.entries.len() - mismatches - degraded,
        soak.entries.len()
    )
    .unwrap();
    serve_summary(&mut out, &soak, &server.stats());
    if let Some(stats) = server.shard_stats() {
        shard_summary(&mut out, stats);
    }
    Ok(CommandOutput {
        stdout: out,
        files: Vec::new(),
    })
}

/// Renders the per-iteration filter trace (`--profile true`): with
/// convergence-driven filtering the number of rows is the number of
/// iterations actually run, and `cleared`/`dirty` show how much work each
/// refine launch really did.
fn profile_table(out: &mut String, iterations: &[sigmo_core::IterationStats]) {
    writeln!(out, "filter profile ({} iterations run):", iterations.len()).unwrap();
    writeln!(
        out,
        "{:>4}\t{:>10}\t{:>10}\t{:>10}",
        "iter", "candidates", "cleared", "dirty"
    )
    .unwrap();
    for it in iterations {
        writeln!(
            out,
            "{:>4}\t{:>10}\t{:>10}\t{:>10}",
            it.iteration, it.candidates.total, it.cleared_bits, it.dirty_nodes
        )
        .unwrap();
    }
}

/// One line of per-pair join decision tallies (`--profile true`): which
/// variant and matching order the engine ran each surviving pair with.
/// Fixed strategies show all pairs in one bucket per axis; adaptive runs
/// show the cost model's split.
fn strategy_line(out: &mut String, s: &sigmo_core::StrategyCounts) {
    writeln!(
        out,
        "join decisions: {} pairs — variant dfs {} / bfs {}, \
         order max-degree {} / min-candidates {}",
        s.total_pairs(),
        s.dfs_pairs,
        s.bfs_pairs,
        s.max_degree_pairs,
        s.min_candidates_pairs
    )
    .unwrap();
}

fn cmd_match(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let queries = load_query_graphs(args.require("queries")?)?;
    let query_graphs: Vec<LabeledGraph> = queries.iter().map(|q| q.graph.clone()).collect();
    let data = load_molecules(args.require("data")?, false)?;
    let config = engine_config(args, MatchMode::FindAll)?;
    let budget = run_budget(args)?;
    let profile = args.get_parsed("profile", false, "true or false")?;
    let queue = Queue::new(DeviceProfile::host());
    let report = Engine::new(config).run_with_governor(
        &query_graphs,
        &to_graphs(&data),
        &queue,
        &Governor::new(&budget),
    );

    let mut out = String::new();
    writeln!(
        out,
        "{} embeddings across {} queries x {} molecules ({:.3}s)",
        report.total_matches,
        queries.len(),
        data.len(),
        report.timings.total().as_secs_f64()
    )
    .unwrap();
    status_line(&mut out, &report.completion);
    if profile {
        profile_table(&mut out, &report.iterations);
        strategy_line(&mut out, &report.strategy);
    }
    for &(dg, qg) in &report.matched_pair_list {
        writeln!(out, "match\t{}\t{}", queries[qg].name, data[dg].name).unwrap();
    }
    if !report.records.is_empty() {
        writeln!(out, "first {} embeddings:", report.records.len()).unwrap();
        for r in &report.records {
            writeln!(
                out,
                "embedding\t{}\t{}\t{:?}",
                queries[r.query_graph].name, data[r.data_graph].name, r.mapping
            )
            .unwrap();
        }
    }
    Ok(CommandOutput {
        stdout: out,
        files: Vec::new(),
    })
}

fn cmd_screen(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let queries = load_query_graphs(args.require("queries")?)?;
    let query_graphs: Vec<LabeledGraph> = queries.iter().map(|q| q.graph.clone()).collect();
    let data = load_molecules(args.require("data")?, false)?;
    let config = engine_config(args, MatchMode::FindFirst)?;
    let budget = run_budget(args)?;
    let queue = Queue::new(DeviceProfile::host());
    let report = Engine::new(config).run_with_governor(
        &query_graphs,
        &to_graphs(&data),
        &queue,
        &Governor::new(&budget),
    );

    let mut hits = vec![0usize; queries.len()];
    for &(_, qg) in &report.matched_pair_list {
        hits[qg] += 1;
    }
    let mut out = String::new();
    writeln!(
        out,
        "screened {} molecules against {} patterns ({:.3}s)",
        data.len(),
        queries.len(),
        report.timings.total().as_secs_f64()
    )
    .unwrap();
    status_line(&mut out, &report.completion);
    writeln!(out, "{:<24}\thits\trate%", "pattern").unwrap();
    for (q, &h) in queries.iter().zip(&hits) {
        writeln!(
            out,
            "{:<24}\t{}\t{:.1}",
            q.name,
            h,
            100.0 * h as f64 / data.len() as f64
        )
        .unwrap();
    }
    Ok(CommandOutput {
        stdout: out,
        files: Vec::new(),
    })
}

fn cmd_generate(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let count = args.get_parsed("count", 100usize, "an integer")?;
    let seed = args.get_parsed("seed", 0u64, "an integer")?;
    let min_heavy = args.get_parsed("min-heavy", 8usize, "an integer")?;
    let max_heavy = args.get_parsed("max-heavy", 48usize, "an integer")?;
    let output = args.require("output")?.to_string();
    let mut gen = MoleculeGenerator::new(
        GeneratorConfig {
            min_heavy_atoms: min_heavy,
            max_heavy_atoms: max_heavy.max(min_heavy),
            ..Default::default()
        },
        seed,
    );
    let mols: Vec<NamedMolecule> = gen
        .generate_batch(count)
        .into_iter()
        .enumerate()
        .map(|(i, molecule)| NamedMolecule {
            name: format!("gen-{seed}-{i}"),
            molecule,
        })
        .collect();
    let contents = serialize_molecules(&output, &mols)?;
    Ok(CommandOutput {
        stdout: format!("wrote {count} molecules to {output}\n"),
        files: vec![(output, contents.into_bytes())],
    })
}

/// Renders a quarantine report: one deterministic line per rejected
/// input line, in file order.
fn quarantine_report(out: &mut String, quarantined: &[sigmo_mol::QuarantinedLine]) {
    if quarantined.is_empty() {
        return;
    }
    writeln!(out, "quarantined {} lines:", quarantined.len()).unwrap();
    for q in quarantined {
        writeln!(out, "  line {}: {} ({})", q.line, q.text, q.error).unwrap();
    }
}

/// `index build`: digests every molecule in `--data` once (under the
/// default engine schema, canonical-deduplicated exactly as the server
/// interns them) and persists the screening index to `--output`.
///
/// `--smi <file>` is the bulk-ingest alternative to `--data`: lines parse
/// in parallel and malformed records are quarantined (reported, never
/// fatal) instead of aborting the whole build.
fn cmd_index_build(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let output = args.require("output")?.to_string();
    let radius = args.get_parsed("radius", IndexConfig::default().radius, "an integer ≥ 0")?;
    let schema = EngineConfig::default().schema;
    let mut store = MolStore::with_screen_index(IndexConfig { radius }, &schema);
    let mut out = String::new();
    let total = match args.get("smi") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(IoError::Fs(e)))?;
            let ingest = sigmo_mol::ingest_smi(&text, false);
            for (_, mol) in &ingest.molecules {
                store.intern(&mol.to_labeled_graph());
            }
            quarantine_report(&mut out, &ingest.quarantined);
            ingest.molecules.len()
        }
        None => {
            let data = load_molecules(args.require("data")?, false)?;
            for m in &data {
                store.intern(&m.molecule.to_labeled_graph());
            }
            data.len()
        }
    };
    let bytes = store.freeze_index().map_err(CliError::Index)?;
    let stats = store.screen_index().expect("index maintained").stats();
    writeln!(
        out,
        "indexed {total} molecules ({} classes) at radius {radius}: {output} ({} bytes)",
        stats.live,
        bytes.len()
    )
    .unwrap();
    Ok(CommandOutput {
        stdout: out,
        files: vec![(output, bytes)],
    })
}

/// `index stat`: validates a persisted index (magic, version, checksums)
/// and prints its header and section statistics.
fn cmd_index_stat(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let path = args.require("index")?;
    let bytes = std::fs::read(path).map_err(IoError::Fs)?;
    let file_err = |e: sigmo_serve::IndexFileError| CliError::Index(format!("{path}: {e}"));
    let frozen = FrozenIndex::open(bytes).map_err(file_err)?;
    let stat = frozen.stat().map_err(file_err)?;
    let mut out = String::new();
    writeln!(out, "index: {path}").unwrap();
    writeln!(out, "format version: {}", stat.version).unwrap();
    writeln!(out, "digest radius: {}", stat.radius).unwrap();
    writeln!(
        out,
        "molecules: {} live / {} slots",
        stat.live, stat.molecules
    )
    .unwrap();
    writeln!(out, "digest entries: {}", stat.digest_entries).unwrap();
    writeln!(
        out,
        "postings: {} ids across {} non-empty label lists",
        stat.posting_entries, stat.label_postings
    )
    .unwrap();
    writeln!(
        out,
        "bytes: {} total ({} stored graphs)",
        stat.file_bytes, stat.graph_bytes
    )
    .unwrap();
    Ok(CommandOutput {
        stdout: out,
        files: Vec::new(),
    })
}

fn cmd_info(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let data = load_molecules(args.require("data")?, false)?;
    let graphs = to_graphs(&data);
    let atoms: usize = graphs.iter().map(|g| g.num_nodes()).sum();
    let bonds: usize = graphs.iter().map(|g| g.num_edges()).sum();
    let max_atoms = graphs.iter().map(|g| g.num_nodes()).max().unwrap_or(0);
    let rings: usize = data
        .iter()
        .map(|m| descriptors(&m.molecule).ring_count)
        .sum();
    let lipinski = data
        .iter()
        .filter(|m| descriptors(&m.molecule).lipinski_ok())
        .count();
    let mut out = String::new();
    writeln!(out, "molecules: {}", data.len()).unwrap();
    writeln!(out, "atoms: {atoms} (largest molecule: {max_atoms})").unwrap();
    writeln!(out, "bonds: {bonds}").unwrap();
    writeln!(
        out,
        "avg degree: {:.2}",
        2.0 * bonds as f64 / atoms.max(1) as f64
    )
    .unwrap();
    writeln!(out, "rings: {rings}").unwrap();
    writeln!(
        out,
        "lipinski-compliant: {lipinski} ({:.1}%)",
        100.0 * lipinski as f64 / data.len() as f64
    )
    .unwrap();
    Ok(CommandOutput {
        stdout: out,
        files: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("sigmo-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn match_command_end_to_end() {
        let q = write_temp("q1.smi", "C=O carbonyl\n");
        let d = write_temp("d1.smi", "CC(=O)O acid\nCCO ethanol\n");
        let args = parse_args(&strs(&["match", "--queries", &q, "--data", &d])).unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("1 embeddings"), "{}", out.stdout);
        assert!(out.stdout.contains("match\tcarbonyl\tacid"));
        assert!(!out.stdout.contains("ethanol"));
    }

    #[test]
    fn match_command_with_show_collects_embeddings() {
        let q = write_temp("q2.smi", "C=O carbonyl\n");
        let d = write_temp("d2.smi", "CC(=O)C acetone\n");
        let args = parse_args(&strs(&[
            "match",
            "--queries",
            &q,
            "--data",
            &d,
            "--show",
            "5",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("embedding\tcarbonyl\tacetone"));
    }

    #[test]
    fn screen_command_reports_rates() {
        let q = write_temp("q3.smi", "CO hydroxyl\nC#N nitrile\n");
        let d = write_temp("d3.smi", "CCO a\nCCCO b\nCC c\n");
        let args = parse_args(&strs(&["screen", "--queries", &q, "--data", &d])).unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("hydroxyl"), "{}", out.stdout);
        assert!(out.stdout.contains("66.7"), "{}", out.stdout);
        assert!(out.stdout.contains("nitrile"));
    }

    #[test]
    fn generate_command_produces_parseable_output() {
        let args = parse_args(&strs(&[
            "generate", "--count", "5", "--seed", "9", "--output", "lib.smi",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert_eq!(out.files.len(), 1);
        let (_, contents) = &out.files[0];
        let text = std::str::from_utf8(contents).unwrap();
        let back = crate::io::parse_molecules("lib.smi", text, false).unwrap();
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn info_command_statistics() {
        let d = write_temp("d4.smi", "c1ccccc1 benzene\nCCO ethanol\n");
        let args = parse_args(&strs(&["info", "--data", &d])).unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("molecules: 2"));
        assert!(out.stdout.contains("rings: 1"));
        assert!(out.stdout.contains("lipinski-compliant: 2"));
    }

    #[test]
    fn induced_flag_flows_through() {
        // Path query in benzene ring: monomorphism matches, induced-only
        // matching differs for triangle cases; here just assert the flag
        // parses and the command runs.
        let q = write_temp("q5.smi", "CCC propyl\n");
        let d = write_temp("d5.smi", "CCCC butane\n");
        let args = parse_args(&strs(&[
            "match",
            "--queries",
            &q,
            "--data",
            &d,
            "--induced",
            "true",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("embeddings"));
    }

    #[test]
    fn profile_flag_renders_iteration_table() {
        let q = write_temp("qp.smi", "C=O carbonyl\n");
        let d = write_temp("dp.smi", "CC(=O)O acid\nCCO ethanol\n");
        let args = parse_args(&strs(&[
            "match",
            "--queries",
            &q,
            "--data",
            &d,
            "--profile",
            "true",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("filter profile"), "{}", out.stdout);
        assert!(out.stdout.contains("candidates"), "{}", out.stdout);
        assert!(out.stdout.contains("cleared"), "{}", out.stdout);
        assert!(out.stdout.contains("dirty"), "{}", out.stdout);
        // The default incremental engine converges fast on tiny queries:
        // the table rows are the iterations actually run, not the
        // configured six.
        let rows = out
            .stdout
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric) && l.contains('\t'))
            .count();
        assert!(rows >= 2, "{}", out.stdout);
        // Without the flag, no table.
        let plain = parse_args(&strs(&["match", "--queries", &q, "--data", &d])).unwrap();
        let out2 = run_command(&plain).unwrap();
        assert!(!out2.stdout.contains("filter profile"));
    }

    #[test]
    fn join_strategy_flag_selects_and_profiles_decisions() {
        let q = write_temp("qs.smi", "C=O carbonyl\n");
        let d = write_temp("ds.smi", "CC(=O)O acid\nCC(=O)C acetone\n");
        let run = |strategy: &str| {
            let args = parse_args(&strs(&[
                "match",
                "--queries",
                &q,
                "--data",
                &d,
                "--join-strategy",
                strategy,
                "--profile",
                "true",
            ]))
            .unwrap();
            run_command(&args).unwrap().stdout
        };
        let dfs = run("dfs");
        let bfs = run("bfs");
        let adaptive = run("adaptive");
        for out in [&dfs, &bfs, &adaptive] {
            assert!(out.contains("2 embeddings"), "{out}");
            assert!(out.contains("join decisions:"), "{out}");
        }
        assert!(dfs.contains("bfs 0"), "{dfs}");
        assert!(bfs.contains("dfs 0"), "{bfs}");

        let bad = parse_args(&strs(&[
            "match",
            "--queries",
            &q,
            "--data",
            &d,
            "--join-strategy",
            "quantum",
        ]))
        .unwrap();
        assert!(matches!(run_command(&bad), Err(CliError::Args(_))));
    }

    #[test]
    fn unbudgeted_match_reports_complete_status() {
        let q = write_temp("q6.smi", "C=O carbonyl\n");
        let d = write_temp("d6.smi", "CC(=O)O acid\n");
        let args = parse_args(&strs(&["match", "--queries", &q, "--data", &d])).unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("status: complete"), "{}", out.stdout);
        assert!(!out.stdout.contains("truncated"));
    }

    #[test]
    fn step_budget_truncates_with_status_line() {
        // A 1-step join budget cannot finish any real workload; the
        // command must still succeed and label the partial result. Step
        // budgets (not deadlines) keep this test timing-independent.
        let q = write_temp("q7.smi", "CCO ethanolish\n");
        let d = write_temp("d7.smi", "CCCO a\nCCCCO b\nCCO c\n");
        let args = parse_args(&strs(&[
            "match",
            "--queries",
            &q,
            "--data",
            &d,
            "--step-budget",
            "1",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(
            out.stdout.contains("status: truncated (step-budget)"),
            "{}",
            out.stdout
        );
        assert!(out.stdout.contains("sound partial result"));
    }

    #[test]
    fn screen_accepts_budget_flags() {
        let q = write_temp("q8.smi", "CO hydroxyl\n");
        let d = write_temp("d8.smi", "CCO a\nCC b\n");
        let args = parse_args(&strs(&[
            "screen",
            "--queries",
            &q,
            "--data",
            &d,
            "--max-embeddings",
            "1000000",
            "--deadline-ms",
            "60000",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        // Generous budgets must not change a small run's outcome.
        assert!(out.stdout.contains("status: complete"), "{}", out.stdout);
        assert!(out.stdout.contains("hydroxyl"));
    }

    #[test]
    fn bad_budget_values_are_arg_errors() {
        let q = write_temp("q9.smi", "CO hydroxyl\n");
        let d = write_temp("d9.smi", "CCO a\n");
        let args = parse_args(&strs(&[
            "match",
            "--queries",
            &q,
            "--data",
            &d,
            "--deadline-ms",
            "soon",
        ]))
        .unwrap();
        assert!(matches!(run_command(&args), Err(CliError::Args(_))));
    }

    #[test]
    fn serve_command_runs_a_deterministic_soak() {
        let args = parse_args(&strs(&["serve", "--requests", "12", "--seed", "5"])).unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("served 12 requests"), "{}", out.stdout);
        assert!(out.stdout.contains("cache hits/misses"), "{}", out.stdout);
        // Same seed, same transcript.
        let out2 = run_command(&args).unwrap();
        assert_eq!(out.stdout, out2.stdout);
        // Different seed, different workload (ticks or matches move).
        let other = parse_args(&strs(&["serve", "--requests", "12", "--seed", "6"])).unwrap();
        let out3 = run_command(&other).unwrap();
        assert_ne!(out.stdout, out3.stdout);
    }

    #[test]
    fn replay_command_verifies_against_the_oracle() {
        let args = parse_args(&strs(&[
            "replay",
            "--requests",
            "8",
            "--seed",
            "11",
            "--step-budget",
            "200",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(
            out.stdout
                .contains("replay: 8/8 requests bit-identical to the unbatched oracle"),
            "{}",
            out.stdout
        );
        assert!(!out.stdout.contains("MISMATCH"), "{}", out.stdout);
    }

    #[test]
    fn serve_no_cache_flag_disables_result_reuse() {
        let args = parse_args(&strs(&[
            "serve",
            "--requests",
            "10",
            "--seed",
            "3",
            "--cache",
            "false",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("result 0/0"), "{}", out.stdout);
    }

    #[test]
    fn serve_sharded_soak_is_deterministic_and_summarized() {
        let args = parse_args(&strs(&[
            "serve",
            "--requests",
            "16",
            "--seed",
            "5",
            "--shards",
            "4",
            "--replicas",
            "2",
            "--pool-skew",
            "3",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("served 16 requests"), "{}", out.stdout);
        assert!(
            out.stdout.contains("shards: 4 —"),
            "shard summary missing: {}",
            out.stdout
        );
        assert!(out.stdout.contains("hot shard"), "{}", out.stdout);
        let out2 = run_command(&args).unwrap();
        assert_eq!(out.stdout, out2.stdout, "sharded soak must be seeded");
    }

    #[test]
    fn replay_sharded_under_faults_matches_the_oracle() {
        // One crashed rank, one straggler, transient blips: replicas must
        // absorb every fault, leaving all requests bit-identical to the
        // unsharded fault-free oracle — and some dispatch must retry.
        let args = parse_args(&strs(&[
            "replay",
            "--requests",
            "10",
            "--seed",
            "11",
            "--shards",
            "4",
            "--replicas",
            "2",
            "--crashes",
            "1",
            "--stragglers",
            "1",
            "--transient-pct",
            "15",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(
            out.stdout
                .contains("replay: 10/10 requests bit-identical to the unbatched oracle"),
            "{}",
            out.stdout
        );
        assert!(!out.stdout.contains("MISMATCH"), "{}", out.stdout);
        assert!(!out.stdout.contains("degraded requests:"), "{}", out.stdout);
        assert!(out.stdout.contains("0 degraded slices"), "{}", out.stdout);
    }

    #[test]
    fn shard_flag_validation() {
        // replicas must fit in 1..=shards.
        let bad = parse_args(&strs(&[
            "serve",
            "--requests",
            "4",
            "--shards",
            "2",
            "--replicas",
            "3",
        ]))
        .unwrap();
        assert!(matches!(run_command(&bad), Err(CliError::Args(_))));
        // --shards 0 is the unsharded path: no shard summary.
        let off = parse_args(&strs(&["serve", "--requests", "4", "--shards", "0"])).unwrap();
        let out = run_command(&off).unwrap();
        assert!(!out.stdout.contains("shards:"), "{}", out.stdout);
    }

    #[test]
    fn missing_file_is_reported() {
        let args = parse_args(&strs(&["info", "--data", "/nonexistent/path/x.smi"])).unwrap();
        assert!(matches!(run_command(&args), Err(CliError::Io(_))));
    }

    #[test]
    fn index_build_and_stat_round_trip() {
        let d = write_temp("ib.smi", "CCO ethanol\nCC(=O)O acid\nc1ccccc1 benzene\n");
        let out_path = std::env::temp_dir()
            .join("sigmo-cli-tests")
            .join("ib.sigmoidx")
            .to_string_lossy()
            .into_owned();
        let args = parse_args(&strs(&[
            "index", "build", "--data", &d, "--output", &out_path,
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("indexed 3 molecules"), "{}", out.stdout);
        assert_eq!(out.files.len(), 1);
        std::fs::write(&out.files[0].0, &out.files[0].1).unwrap();
        let args = parse_args(&strs(&["index", "stat", "--index", &out_path])).unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("format version: 2"), "{}", out.stdout);
        assert!(
            out.stdout.contains("molecules: 3 live / 3 slots"),
            "{}",
            out.stdout
        );
    }

    #[test]
    fn index_build_smi_quarantines_bad_lines() {
        let d = write_temp(
            "ibq.smi",
            "CCO ethanol\nnot(a(molecule garbage\nCC(=O)O acid\nXx bogus\nc1ccccc1 benzene\n",
        );
        let out_path = std::env::temp_dir()
            .join("sigmo-cli-tests")
            .join("ibq.sigmoidx")
            .to_string_lossy()
            .into_owned();
        let args = parse_args(&strs(&[
            "index", "build", "--smi", &d, "--output", &out_path,
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("quarantined 2 lines"), "{}", out.stdout);
        assert!(out.stdout.contains("line 2:"), "{}", out.stdout);
        assert!(out.stdout.contains("line 4:"), "{}", out.stdout);
        assert!(out.stdout.contains("indexed 3 molecules"), "{}", out.stdout);
        // Quarantine never aborts: the index is still produced.
        assert_eq!(out.files.len(), 1);
    }

    #[test]
    fn serve_corpus_flag_preloads_and_reports() {
        let d = write_temp("corpus.smi", "CCO a\nbroken[ b\nCC(=O)O c\nCCO dup\n");
        let args = parse_args(&strs(&[
            "serve",
            "--requests",
            "5",
            "--seed",
            "3",
            "--corpus",
            &d,
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        // 3 valid lines, one a duplicate class of another.
        assert!(
            out.stdout.contains("corpus: 3 molecules (2 classes)"),
            "{}",
            out.stdout
        );
        assert!(out.stdout.contains("quarantined 1 lines"), "{}", out.stdout);
        assert!(out.stdout.contains("line 2:"), "{}", out.stdout);
    }

    #[test]
    fn index_stat_rejects_corrupt_files() {
        let path = write_temp("bad.sigmoidx", "not an index file at all");
        let args = parse_args(&strs(&["index", "stat", "--index", &path])).unwrap();
        assert!(matches!(run_command(&args), Err(CliError::Index(_))));
    }

    #[test]
    fn serve_index_flags_toggle_screening_without_changing_results() {
        let on = parse_args(&strs(&["serve", "--requests", "10", "--seed", "5"])).unwrap();
        let out_on = run_command(&on).unwrap();
        assert!(
            out_on.stdout.contains("index screening:"),
            "{}",
            out_on.stdout
        );
        let off = parse_args(&strs(&[
            "serve",
            "--requests",
            "10",
            "--seed",
            "5",
            "--no-index",
            "true",
        ]))
        .unwrap();
        let out_off = run_command(&off).unwrap();
        assert!(
            !out_off.stdout.contains("index screening:"),
            "{}",
            out_off.stdout
        );
        // Screening is invisible to results: apart from its own summary
        // line, the transcripts are bit-identical.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("index screening:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&out_on.stdout), strip(&out_off.stdout));
    }

    #[test]
    fn replay_with_preloaded_index_matches_the_oracle() {
        let d = write_temp("pre.smi", "CCO a\nCCN b\nCC(=O)O c\n");
        let idx_path = std::env::temp_dir()
            .join("sigmo-cli-tests")
            .join("pre.sigmoidx")
            .to_string_lossy()
            .into_owned();
        let build = parse_args(&strs(&[
            "index", "build", "--data", &d, "--output", &idx_path,
        ]))
        .unwrap();
        let out = run_command(&build).unwrap();
        std::fs::write(&out.files[0].0, &out.files[0].1).unwrap();
        let args = parse_args(&strs(&[
            "replay",
            "--requests",
            "6",
            "--seed",
            "3",
            "--index",
            &idx_path,
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(
            out.stdout
                .contains("replay: 6/6 requests bit-identical to the unbatched oracle"),
            "{}",
            out.stdout
        );
    }
}
