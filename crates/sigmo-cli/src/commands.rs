//! Subcommand implementations. Each returns a [`CommandOutput`] so the
//! logic is unit-testable without spawning processes.

use crate::args::{ArgError, Command, ParsedArgs};
use crate::io::{load_molecules, load_query_graphs, serialize_molecules, IoError, NamedMolecule};
use sigmo_core::{Engine, EngineConfig, MatchMode};
use sigmo_device::{DeviceProfile, Queue};
use sigmo_graph::LabeledGraph;
use sigmo_mol::{descriptors, GeneratorConfig, MoleculeGenerator};
use std::fmt;
use std::fmt::Write as _;

/// Result of a command: text for stdout plus optional file payloads.
#[derive(Debug, Default)]
pub struct CommandOutput {
    /// Text printed to stdout.
    pub stdout: String,
    /// Files to write: `(path, contents)`.
    pub files: Vec<(String, String)>,
}

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Argument problems.
    Args(ArgError),
    /// File problems.
    Io(IoError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<IoError> for CliError {
    fn from(e: IoError) -> Self {
        CliError::Io(e)
    }
}

fn engine_config(args: &ParsedArgs, mode: MatchMode) -> Result<EngineConfig, ArgError> {
    Ok(EngineConfig {
        refinement_iterations: args.get_parsed("iterations", 6usize, "an integer ≥ 1")?,
        mode,
        induced: args.get_parsed("induced", false, "true or false")?,
        collect_limit: match args.get("show") {
            Some(_) => Some(args.get_parsed("show", 10usize, "an integer")?),
            None => None,
        },
        ..Default::default()
    })
}

fn to_graphs(mols: &[NamedMolecule]) -> Vec<LabeledGraph> {
    mols.iter().map(|m| m.molecule.to_labeled_graph()).collect()
}

/// Dispatches a parsed command line.
pub fn run_command(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    match args.command {
        Command::Match => cmd_match(args),
        Command::Screen => cmd_screen(args),
        Command::Generate => cmd_generate(args),
        Command::Info => cmd_info(args),
    }
}

fn cmd_match(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let queries = load_query_graphs(args.require("queries")?)?;
    let query_graphs: Vec<LabeledGraph> = queries.iter().map(|q| q.graph.clone()).collect();
    let data = load_molecules(args.require("data")?, false)?;
    let config = engine_config(args, MatchMode::FindAll)?;
    let queue = Queue::new(DeviceProfile::host());
    let report = Engine::new(config).run(&query_graphs, &to_graphs(&data), &queue);

    let mut out = String::new();
    writeln!(
        out,
        "{} embeddings across {} queries x {} molecules ({:.3}s)",
        report.total_matches,
        queries.len(),
        data.len(),
        report.timings.total().as_secs_f64()
    )
    .unwrap();
    for &(dg, qg) in &report.matched_pair_list {
        writeln!(out, "match\t{}\t{}", queries[qg].name, data[dg].name).unwrap();
    }
    if !report.records.is_empty() {
        writeln!(out, "first {} embeddings:", report.records.len()).unwrap();
        for r in &report.records {
            writeln!(
                out,
                "embedding\t{}\t{}\t{:?}",
                queries[r.query_graph].name, data[r.data_graph].name, r.mapping
            )
            .unwrap();
        }
    }
    Ok(CommandOutput {
        stdout: out,
        files: Vec::new(),
    })
}

fn cmd_screen(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let queries = load_query_graphs(args.require("queries")?)?;
    let query_graphs: Vec<LabeledGraph> = queries.iter().map(|q| q.graph.clone()).collect();
    let data = load_molecules(args.require("data")?, false)?;
    let config = engine_config(args, MatchMode::FindFirst)?;
    let queue = Queue::new(DeviceProfile::host());
    let report = Engine::new(config).run(&query_graphs, &to_graphs(&data), &queue);

    let mut hits = vec![0usize; queries.len()];
    for &(_, qg) in &report.matched_pair_list {
        hits[qg] += 1;
    }
    let mut out = String::new();
    writeln!(
        out,
        "screened {} molecules against {} patterns ({:.3}s)",
        data.len(),
        queries.len(),
        report.timings.total().as_secs_f64()
    )
    .unwrap();
    writeln!(out, "{:<24}\thits\trate%", "pattern").unwrap();
    for (q, &h) in queries.iter().zip(&hits) {
        writeln!(
            out,
            "{:<24}\t{}\t{:.1}",
            q.name,
            h,
            100.0 * h as f64 / data.len() as f64
        )
        .unwrap();
    }
    Ok(CommandOutput {
        stdout: out,
        files: Vec::new(),
    })
}

fn cmd_generate(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let count = args.get_parsed("count", 100usize, "an integer")?;
    let seed = args.get_parsed("seed", 0u64, "an integer")?;
    let min_heavy = args.get_parsed("min-heavy", 8usize, "an integer")?;
    let max_heavy = args.get_parsed("max-heavy", 48usize, "an integer")?;
    let output = args.require("output")?.to_string();
    let mut gen = MoleculeGenerator::new(
        GeneratorConfig {
            min_heavy_atoms: min_heavy,
            max_heavy_atoms: max_heavy.max(min_heavy),
            ..Default::default()
        },
        seed,
    );
    let mols: Vec<NamedMolecule> = gen
        .generate_batch(count)
        .into_iter()
        .enumerate()
        .map(|(i, molecule)| NamedMolecule {
            name: format!("gen-{seed}-{i}"),
            molecule,
        })
        .collect();
    let contents = serialize_molecules(&output, &mols)?;
    Ok(CommandOutput {
        stdout: format!("wrote {count} molecules to {output}\n"),
        files: vec![(output, contents)],
    })
}

fn cmd_info(args: &ParsedArgs) -> Result<CommandOutput, CliError> {
    let data = load_molecules(args.require("data")?, false)?;
    let graphs = to_graphs(&data);
    let atoms: usize = graphs.iter().map(|g| g.num_nodes()).sum();
    let bonds: usize = graphs.iter().map(|g| g.num_edges()).sum();
    let max_atoms = graphs.iter().map(|g| g.num_nodes()).max().unwrap_or(0);
    let rings: usize = data
        .iter()
        .map(|m| descriptors(&m.molecule).ring_count)
        .sum();
    let lipinski = data
        .iter()
        .filter(|m| descriptors(&m.molecule).lipinski_ok())
        .count();
    let mut out = String::new();
    writeln!(out, "molecules: {}", data.len()).unwrap();
    writeln!(out, "atoms: {atoms} (largest molecule: {max_atoms})").unwrap();
    writeln!(out, "bonds: {bonds}").unwrap();
    writeln!(
        out,
        "avg degree: {:.2}",
        2.0 * bonds as f64 / atoms.max(1) as f64
    )
    .unwrap();
    writeln!(out, "rings: {rings}").unwrap();
    writeln!(
        out,
        "lipinski-compliant: {lipinski} ({:.1}%)",
        100.0 * lipinski as f64 / data.len() as f64
    )
    .unwrap();
    Ok(CommandOutput {
        stdout: out,
        files: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("sigmo-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn match_command_end_to_end() {
        let q = write_temp("q1.smi", "C=O carbonyl\n");
        let d = write_temp("d1.smi", "CC(=O)O acid\nCCO ethanol\n");
        let args = parse_args(&strs(&["match", "--queries", &q, "--data", &d])).unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("1 embeddings"), "{}", out.stdout);
        assert!(out.stdout.contains("match\tcarbonyl\tacid"));
        assert!(!out.stdout.contains("ethanol"));
    }

    #[test]
    fn match_command_with_show_collects_embeddings() {
        let q = write_temp("q2.smi", "C=O carbonyl\n");
        let d = write_temp("d2.smi", "CC(=O)C acetone\n");
        let args = parse_args(&strs(&[
            "match",
            "--queries",
            &q,
            "--data",
            &d,
            "--show",
            "5",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("embedding\tcarbonyl\tacetone"));
    }

    #[test]
    fn screen_command_reports_rates() {
        let q = write_temp("q3.smi", "CO hydroxyl\nC#N nitrile\n");
        let d = write_temp("d3.smi", "CCO a\nCCCO b\nCC c\n");
        let args = parse_args(&strs(&["screen", "--queries", &q, "--data", &d])).unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("hydroxyl"), "{}", out.stdout);
        assert!(out.stdout.contains("66.7"), "{}", out.stdout);
        assert!(out.stdout.contains("nitrile"));
    }

    #[test]
    fn generate_command_produces_parseable_output() {
        let args = parse_args(&strs(&[
            "generate", "--count", "5", "--seed", "9", "--output", "lib.smi",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert_eq!(out.files.len(), 1);
        let (_, contents) = &out.files[0];
        let back = crate::io::parse_molecules("lib.smi", contents, false).unwrap();
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn info_command_statistics() {
        let d = write_temp("d4.smi", "c1ccccc1 benzene\nCCO ethanol\n");
        let args = parse_args(&strs(&["info", "--data", &d])).unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("molecules: 2"));
        assert!(out.stdout.contains("rings: 1"));
        assert!(out.stdout.contains("lipinski-compliant: 2"));
    }

    #[test]
    fn induced_flag_flows_through() {
        // Path query in benzene ring: monomorphism matches, induced-only
        // matching differs for triangle cases; here just assert the flag
        // parses and the command runs.
        let q = write_temp("q5.smi", "CCC propyl\n");
        let d = write_temp("d5.smi", "CCCC butane\n");
        let args = parse_args(&strs(&[
            "match",
            "--queries",
            &q,
            "--data",
            &d,
            "--induced",
            "true",
        ]))
        .unwrap();
        let out = run_command(&args).unwrap();
        assert!(out.stdout.contains("embeddings"));
    }

    #[test]
    fn missing_file_is_reported() {
        let args = parse_args(&strs(&["info", "--data", "/nonexistent/path/x.smi"])).unwrap();
        assert!(matches!(run_command(&args), Err(CliError::Io(_))));
    }
}
