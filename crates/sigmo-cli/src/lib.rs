//! Library backing the `sigmo` command-line tool.
//!
//! Subcommands:
//!
//! * `sigmo match   --queries Q --data D [options]` — batched substructure
//!   matching; queries and data are `.smi` (one SMILES per line, optional
//!   name after whitespace) or `.sdf` files;
//! * `sigmo screen  --queries Q --data D` — Find First screening with
//!   per-pattern hit counts;
//! * `sigmo generate --count N --seed S --output F` — write a synthetic
//!   drug-like library as SMILES or SDF;
//! * `sigmo info    --data D` — dataset statistics (atoms, rings,
//!   descriptors, memory estimate);
//! * `sigmo serve   [--requests N --seed S ...]` — deterministic serving
//!   soak: a seeded workload drives the batched [`sigmo_serve::Server`]
//!   on a virtual clock, reporting throughput, latency percentiles, and
//!   cache hit rates;
//! * `sigmo replay  [--requests N --seed S ...]` — the same soak, then
//!   every request is re-run unbatched and uncached and the served
//!   reports are verified bit-identical against that oracle;
//! * `sigmo index build --data D --output F [--radius K]` — digest a
//!   molecule file into a persistent `SIGMOIDX` screening index;
//! * `sigmo index stat --index F` — validate a persisted index (magic,
//!   version, checksums) and print its statistics.
//!
//! `serve`/`replay` share workload flags (`--requests`, `--seed`,
//! `--mol-pool`, `--query-sets`, `--queries-per-set`, `--request-mols`,
//! `--interarrival`, `--find-first-pct`), server flags
//! (`--queue-capacity`, `--batch-requests`, `--cache true|false`), the
//! index flags (`--index F` preloads a persisted corpus, `--no-index
//! true` disables screening, `--index-radius K` sets the digest radius),
//! and the run-budget flags below. Screening is sound and invisible to
//! results: index-on and index-off transcripts are bit-identical apart
//! from the `index screening:` summary line.
//!
//! `match` and `screen` accept run-budget flags (all optional, all
//! composable): `--deadline-ms N` (wall-clock deadline), `--step-budget N`
//! (DFS join steps per work-group), `--max-embeddings N` (global cap).
//! A tripped budget ends the run early with `status: truncated (reason)`
//! and sound partial counts; without budget flags runs are bit-identical
//! to an unbudgeted engine and report `status: complete`.
//!
//! The argument parser is hand-rolled (no external dependency): flags are
//! `--name value` pairs after the subcommand.

pub mod args;
pub mod commands;
pub mod io;

pub use args::{parse_args, Command, ParsedArgs};
pub use commands::{run_command, CommandOutput};
